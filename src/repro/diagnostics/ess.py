"""Effective sample size via Geyer's initial positive sequence estimator."""

from __future__ import annotations

import numpy as np


def _autocovariance(x: np.ndarray) -> np.ndarray:
    """Biased autocovariance of a 1-D series via FFT."""
    x = np.asarray(x, dtype=float)
    n = x.size
    centered = x - x.mean()
    # Zero-pad to the next power of two for FFT efficiency.
    size = 1 << (2 * n - 1).bit_length()
    f = np.fft.rfft(centered, size)
    acov = np.fft.irfft(f * np.conjugate(f), size)[:n].real
    return acov / n


def effective_sample_size(draws: np.ndarray) -> float:
    """ESS of one scalar parameter across chains.

    Parameters
    ----------
    draws:
        (n_chains, n_draws) post-warmup draws.

    Uses the multi-chain formulation (as in Stan): combines within-chain
    autocovariances with between-chain variance, then truncates the lag sum
    with Geyer's initial monotone positive sequence.
    """
    draws = np.asarray(draws, dtype=float)
    if draws.ndim == 1:
        draws = draws[None, :]
    n_chains, n_draws = draws.shape
    if n_draws < 4:
        return float(n_chains * n_draws)

    acov = np.stack([_autocovariance(draws[c]) for c in range(n_chains)])
    chain_means = draws.mean(axis=1)
    mean_var = acov[:, 0].mean() * n_draws / (n_draws - 1)
    var_plus = mean_var * (n_draws - 1) / n_draws
    if n_chains > 1:
        var_plus += chain_means.var(ddof=1)
    # Scale-relative degeneracy test: a constant series can acquire a
    # few-ulp variance under an affine transform (the mean rounds), so an
    # exact zero check would break affine invariance.
    scale_sq = float(np.max(np.abs(draws))) ** 2
    degenerate = 1e-20 * max(scale_sq, np.finfo(float).tiny)
    if var_plus <= degenerate:
        return float(n_chains * n_draws)

    # rho_t = 1 - (W - mean autocov_t) / var_plus
    rho = 1.0 - (mean_var - acov.mean(axis=0)) / var_plus
    rho[0] = 1.0

    # Geyer: sum consecutive pairs while positive and monotonically decreasing.
    total = 0.0
    prev_pair = np.inf
    t = 1
    while t + 1 < n_draws:
        pair = rho[t] + rho[t + 1]
        if pair < 0.0:
            break
        pair = min(pair, prev_pair)
        total += pair
        prev_pair = pair
        t += 2

    tau = 1.0 + 2.0 * total
    ess = n_chains * n_draws / max(tau, 1e-12)
    return float(min(ess, n_chains * n_draws * 1.0))


def min_ess(draws: np.ndarray) -> float:
    """Worst-case ESS across parameters of a (n_chains, n_draws, dim) array."""
    draws = np.asarray(draws, dtype=float)
    if draws.ndim != 3:
        raise ValueError(f"expected (n_chains, n_draws, dim), got {draws.shape}")
    return float(min(effective_sample_size(draws[:, :, k]) for k in range(draws.shape[2])))
