"""Design-space exploration over cores x chains x iterations (Section VI-B).

Each design point replays a recorded reference run under a different
configuration: fewer chains means taking a subset of the recorded chains,
fewer iterations means truncating them, and the latency/energy of the
configuration comes from the machine and energy models. The *energy oracle*
is the cheapest point whose result quality (KL against ground truth) stays
acceptable; the *detected* points are those reachable with runtime
convergence detection (one per core count); the *user setting* is the
original full-budget 4-chain configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.energy import EnergyModel
from repro.arch.machine import MachineModel
from repro.arch.platforms import Platform
from repro.arch.profile import WorkloadProfile
from repro.core.elision import ConvergenceDetector
from repro.core.extrapolation import full_budget_works
from repro.diagnostics.kl import gaussian_kl
from repro.diagnostics.rhat import max_rhat
from repro.inference.results import SamplingResult

#: Baseline KL-to-ground-truth level below which a result is always "good
#: quality". The KL of a finite sample set has a dimension-dependent floor,
#: so the explorer additionally accepts any point whose KL is within
#: KL_QUALITY_SLACK of the *user setting's* own KL — the paper's criterion
#: is exactly that intermediate results match the full-budget result.
KL_QUALITY_THRESHOLD = 0.35
KL_QUALITY_SLACK = 1.5


@dataclass(frozen=True)
class DesignPoint:
    """One (cores, chains, iterations) configuration with its costs."""

    workload: str
    n_cores: int
    n_chains: int
    iterations: int          # post-warmup iterations per chain (full-budget units)
    latency_s: float
    energy_j: float
    rhat: float
    kl: float
    kind: str                # "grid" | "user" | "detected" | "oracle"

    def acceptable(self, kl_threshold: float = KL_QUALITY_THRESHOLD) -> bool:
        return np.isfinite(self.kl) and self.kl <= kl_threshold


class DesignSpaceExplorer:
    """Sweep configurations of one workload on one platform."""

    def __init__(
        self,
        platform: Platform,
        detector: Optional[ConvergenceDetector] = None,
        core_options: Sequence[int] = (1, 2, 4),
        chain_options: Sequence[int] = (1, 2, 4),
        iteration_fractions: Sequence[float] = (0.125, 0.25, 0.5, 0.75, 1.0),
    ) -> None:
        self.platform = platform
        self.machine = MachineModel(platform)
        self.energy = EnergyModel(platform)
        self.detector = detector or ConvergenceDetector()
        self.core_options = [c for c in core_options if c <= platform.cores]
        self.chain_options = list(chain_options)
        self.iteration_fractions = list(iteration_fractions)

    # -- costing one configuration against the recorded run -------------------

    def cost_point(
        self,
        profile: WorkloadProfile,
        result: SamplingResult,
        n_cores: int,
        n_chains: int,
        iterations: int,
        ground_truth: Optional[np.ndarray],
        kind: str = "grid",
    ) -> DesignPoint:
        iterations = max(int(iterations), 2)
        # Work includes full warmup plus the kept prefix, per chain, in the
        # workload's original budget units (see core.extrapolation).
        works = full_budget_works(result, profile, kept_iterations=iterations)
        works = works[:n_chains]
        latency = self.machine.job_seconds(profile, works, n_cores=n_cores)
        cores_used = min(n_cores, n_chains)
        energy = self.energy.energy_joules(cores_used, latency)

        # Quality is evaluated on the recorded draws (clamped to what the
        # scaled reference run holds; more iterations only improve quality).
        quality_iterations = min(iterations, result.n_kept)
        draws = result.stacked()[:n_chains, :quality_iterations, :]
        rhat = (
            max_rhat(draws)
            if n_chains >= 2 and quality_iterations >= 4
            else float("nan")
        )
        kl = float("nan")
        if ground_truth is not None:
            pooled = draws.reshape(-1, draws.shape[-1])
            try:
                kl = gaussian_kl(pooled, ground_truth)
            except (np.linalg.LinAlgError, ValueError):
                kl = float("nan")
        return DesignPoint(
            workload=result.model_name,
            n_cores=n_cores,
            n_chains=n_chains,
            iterations=iterations,
            latency_s=latency,
            energy_j=energy,
            rhat=rhat,
            kl=kl,
            kind=kind,
        )

    # -- the full exploration --------------------------------------------------

    def explore(
        self,
        profile: WorkloadProfile,
        result: SamplingResult,
        ground_truth: Optional[np.ndarray] = None,
    ) -> List[DesignPoint]:
        """All grid points plus the user setting, detected points, and oracle."""
        points: List[DesignPoint] = []
        kept_full = profile.default_iterations - profile.default_warmup

        for n_chains in self.chain_options:
            if n_chains > result.n_chains:
                continue
            for n_cores in self.core_options:
                for fraction in self.iteration_fractions:
                    points.append(
                        self.cost_point(
                            profile, result, n_cores, n_chains,
                            int(round(fraction * kept_full)), ground_truth,
                        )
                    )

        # The original user setting: every chain, full budget, all cores.
        points.append(
            self.cost_point(
                profile, result, max(self.core_options), result.n_chains,
                kept_full, ground_truth, kind="user",
            )
        )

        # Convergence-detection points: achievable without ground truth.
        report = self.detector.detect(result)
        if report.converged:
            for n_cores in self.core_options:
                points.append(
                    self.cost_point(
                        profile, result, n_cores, result.n_chains,
                        report.converged_iteration, ground_truth,
                        kind="detected",
                    )
                )

        # The energy oracle: cheapest acceptable-quality grid point. It may
        # use 1-2 chains — infeasible in practice without the ground truth,
        # which is exactly the paper's point.
        if ground_truth is not None:
            user_point = next(p for p in points if p.kind == "user")
            threshold = KL_QUALITY_THRESHOLD
            if np.isfinite(user_point.kl):
                threshold = max(threshold, KL_QUALITY_SLACK * user_point.kl)
            acceptable = [
                p for p in points if p.kind == "grid" and p.acceptable(threshold)
            ]
            if acceptable:
                oracle = min(acceptable, key=lambda p: p.energy_j)
                points.append(
                    DesignPoint(
                        workload=oracle.workload,
                        n_cores=oracle.n_cores,
                        n_chains=oracle.n_chains,
                        iterations=oracle.iterations,
                        latency_s=oracle.latency_s,
                        energy_j=oracle.energy_j,
                        rhat=oracle.rhat,
                        kl=oracle.kl,
                        kind="oracle",
                    )
                )
        return points

    # -- summaries used by the figure benches -----------------------------------

    @staticmethod
    def select(points: Sequence[DesignPoint], kind: str) -> List[DesignPoint]:
        return [p for p in points if p.kind == kind]

    @staticmethod
    def energy_saving_fraction(points: Sequence[DesignPoint]) -> float:
        """Energy saved by the best detected point relative to the user
        setting (Figure 7's per-workload bars)."""
        user = DesignSpaceExplorer.select(points, "user")
        detected = DesignSpaceExplorer.select(points, "detected")
        if not user or not detected:
            return 0.0
        best = min(detected, key=lambda p: p.energy_j)
        return 1.0 - best.energy_j / user[0].energy_j
