"""Chain checkpointing for running jobs.

Each worker periodically snapshots its chain's draws-so-far to one ``.npz``
file per ``(job, chain)``; writes are atomic (tmp + rename) and contention
free because a chain is owned by exactly one process. A crashed or killed
job therefore leaves a usable partial posterior behind — the same prefix a
completed run would have produced, by the determinism guarantee — which
:func:`CheckpointStore.load_job` reassembles into per-chain arrays.

Checkpoint format (npz):

* ``samples`` — (t+1, dim) draws so far, warmup included;
* ``iteration`` — last completed iteration ``t`` (0-based);
* ``n_warmup``, ``n_iterations``, ``chain_index`` — run geometry.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np


class CheckpointStore:
    """Per-(job, chain) draw snapshots under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = Path(directory)

    def _path(self, job_id: str, chain_index: int) -> Path:
        return self.directory / job_id / f"chain-{chain_index:03d}.npz"

    def save_chain(
        self,
        job_id: str,
        chain_index: int,
        samples: np.ndarray,
        iteration: int,
        n_warmup: int,
        n_iterations: int,
    ) -> Path:
        path = self._path(job_id, chain_index)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp.npz")
        np.savez(
            tmp,
            samples=np.asarray(samples),
            iteration=np.int64(iteration),
            n_warmup=np.int64(n_warmup),
            n_iterations=np.int64(n_iterations),
            chain_index=np.int64(chain_index),
        )
        tmp.replace(path)
        return path

    def load_chain(self, job_id: str, chain_index: int) -> Optional[Dict]:
        path = self._path(job_id, chain_index)
        if not path.exists():
            return None
        with np.load(path) as payload:
            return {name: payload[name] for name in payload.files}

    def load_job(self, job_id: str) -> Dict[int, Dict]:
        """All checkpointed chains of a job, keyed by chain index."""
        job_dir = self.directory / job_id
        if not job_dir.exists():
            return {}
        chains: Dict[int, Dict] = {}
        for path in sorted(job_dir.glob("chain-*.npz")):
            with np.load(path) as payload:
                record = {name: payload[name] for name in payload.files}
            chains[int(record["chain_index"])] = record
        return chains

    def latest_iteration(self, job_id: str, chain_index: int) -> int:
        """Last checkpointed iteration, or -1 when none exists."""
        record = self.load_chain(job_id, chain_index)
        if record is None:
            return -1
        return int(record["iteration"])

    def discard_job(self, job_id: str) -> None:
        job_dir = self.directory / job_id
        if not job_dir.exists():
            return
        for path in job_dir.glob("chain-*.npz"):
            path.unlink()
        try:
            job_dir.rmdir()
        except OSError:
            pass
