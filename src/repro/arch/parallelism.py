"""Fine-grained parallelism analysis of model computation graphs.

Section VII-A of the paper observes that beyond chain-level parallelism,
Bayesian inference exposes *computation parallelism* within one density
evaluation (independent likelihood terms, vector operations) and *variable
sampling parallelism* ("when presenting the models as graphs ... the
variables at the same layer can be sampled in parallel").

This module makes those observations quantitative on the reproduction's own
computation graphs: the autodiff tape of a model's log density *is* the
dependency graph the paper describes. We compute the classic work/span
decomposition:

* **work** — total cost of all graph nodes (weighted by element count);
* **span** — cost along the critical (longest dependency) path;
* **parallelism = work / span** — the speedup bound with unlimited
  functional units (Brent's bound), i.e. how much SIMD/spatial hardware a
  workload could usefully exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.autodiff.tape import Var, _toposort

#: fixed per-node issue overhead (cycles) in the weight model
NODE_OVERHEAD = 4.0
#: per-element cost (cycles) of a vectorizable op on a scalar unit
ELEMENT_COST = 1.0


def _node_weight(node: Var) -> float:
    """Cost of one graph node for work/span accounting."""
    return NODE_OVERHEAD + ELEMENT_COST * float(node.value.size)


@dataclass(frozen=True)
class GraphParallelism:
    """Work/span decomposition of one model evaluation graph."""

    workload: str
    n_nodes: int
    work: float
    span: float
    max_layer_width: int
    n_layers: int

    @property
    def parallelism(self) -> float:
        """Speedup bound with unlimited parallel units (work / span)."""
        return self.work / self.span if self.span > 0 else 1.0

    def speedup_bound(self, n_units: int) -> float:
        """Brent's bound: T_p >= work/p + span, so speedup is limited by
        both available units and the critical path."""
        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        t_p = self.work / n_units + self.span
        return self.work / t_p


def analyze_graph(model, x: np.ndarray | None = None) -> GraphParallelism:
    """Work/span analysis of ``model``'s log-density graph at ``x``."""
    if x is None:
        x = model.initial_position(np.random.default_rng(0), jitter=0.1)
    root = model._logp_var(Var(np.asarray(x, dtype=float)))
    nodes = _toposort(root)  # reverse creation order (children first)

    # Longest weighted path ending at each node, computed in forward
    # (creation) order so parents are finished before children.
    depth: Dict[int, float] = {}
    layer: Dict[int, int] = {}
    for node in reversed(nodes):
        weight = _node_weight(node)
        if node.parents:
            parent_depth = max(depth[id(p)] for p in node.parents)
            parent_layer = max(layer[id(p)] for p in node.parents)
        else:
            parent_depth = 0.0
            parent_layer = -1
        depth[id(node)] = parent_depth + weight
        layer[id(node)] = parent_layer + 1

    work = sum(_node_weight(node) for node in nodes)
    span = max(depth.values())
    layers: Dict[int, int] = {}
    for node in nodes:
        layers[layer[id(node)]] = layers.get(layer[id(node)], 0) + 1

    return GraphParallelism(
        workload=getattr(model, "name", "model"),
        n_nodes=len(nodes),
        work=work,
        span=span,
        max_layer_width=max(layers.values()),
        n_layers=len(layers),
    )


def layer_schedule(model, x: np.ndarray | None = None) -> List[int]:
    """Number of graph nodes per dependency layer (the paper's "variables at
    the same layer can be sampled in parallel")."""
    if x is None:
        x = model.initial_position(np.random.default_rng(0), jitter=0.1)
    root = model._logp_var(Var(np.asarray(x, dtype=float)))
    nodes = _toposort(root)
    layer: Dict[int, int] = {}
    for node in reversed(nodes):
        if node.parents:
            layer[id(node)] = max(layer[id(p)] for p in node.parents) + 1
        else:
            layer[id(node)] = 0
    counts: Dict[int, int] = {}
    for node in nodes:
        counts[layer[id(node)]] = counts.get(layer[id(node)], 0) + 1
    return [counts[k] for k in sorted(counts)]
