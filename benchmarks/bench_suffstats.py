"""Sufficient-statistics rewrite speedup — replay cost vs modeled data size.

For three BayesSuite workloads whose likelihoods fold
(:mod:`repro.autodiff.suffstats`), this measures per-call gradient cost of
the compiled tape with the rewrite **off** vs **on**, along a data-size
axis: each workload's synthetic dataset is tiled ``reps``× past its
full-scale size, so the unrewritten replay grows O(N) while the rewritten
replay stays O(parameters). The headline number backs the PR's claim:
**the speedup grows with data size, reaching >=2x on the survival
workload at full scale and ~10x at 8x data** — the paper's observation
that likelihood evaluation dominates these workloads, turned into an
optimization.

Values and gradients are asserted equivalent (1e-8 relative) between the
two tapes at every measured position before any timing, and a rewrite
that was demoted or inactive fails the measurement — the speedup column
never trades correctness for throughput.

Three entry points:

* standalone — ``python benchmarks/bench_suffstats.py`` prints a table
  and writes ``BENCH_suffstats.json`` next to this file;
* ``--check`` — compares fresh measurements against the committed
  baseline JSON and exits non-zero if any point fell below
  ``REPRO_SUFFSTATS_REGRESSION`` (default 0.9) of its baseline speedup,
  the survival headline dropped below 2x, or any workload's speedup
  stopped growing with data size — the nightly CI gate;
* pytest — a reduced smoke test (survival at 1x and 4x data) asserting
  equivalence and >=2x at the larger size.

Knobs: ``REPRO_BENCH_CALLS`` (rounds per timing, default 60),
``REPRO_BENCH_REPEATS`` (best-of repeats, default 3). The data-size axis
is the ``reps`` ladder below, not ``REPRO_BENCH_SCALE`` — the suite
factories cap ``scale`` at 1.0, so growth comes from tiling the
per-observation arrays.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

import repro.suite.disease
import repro.suite.survival
import repro.suite.tickets
from repro.autodiff import compile as tape_compile
from repro.autodiff import suffstats
from repro.suite import load_workload

CALLS = int(os.environ.get("REPRO_BENCH_CALLS", "60"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
#: Looser than the batch bench's 0.9: these ladders span 60s-era container
#: timing noise of ~20% at the large-reps points, and the absolute
#: headline/growth gates below catch a rewrite that stops engaging
#: (speedup collapses to ~1x) regardless of this floor.
REGRESSION_FLOOR = float(os.environ.get("REPRO_SUFFSTATS_REGRESSION", "0.75"))

BASELINE_PATH = Path(__file__).parent / "BENCH_suffstats.json"

#: Data-size ladders (reps multiplies the observation count). survival is
#: the headline: its CJS likelihood folds completely, so the speedup is
#: essentially N/params. tickets keeps an irreducible logsumexp mixture
#: branch (modest, still growing); disease's spline design only out-costs
#: the folded Gram form once the dataset is large, so its ladder reaches
#: further.
REPS = {
    "survival": (1, 2, 4, 8),
    "tickets": (1, 2, 4, 8),
    "disease": (1, 4, 16, 64),
}

#: The workload that must hold >=2x at its largest data size.
HEADLINE = "survival"
HEADLINE_FLOOR = 2.0

#: Monotone-growth tolerance: consecutive ladder points may dip at most
#: this fraction below the previous one; the ladder's last point must
#: still exceed 0.9x its first. The slack absorbs real non-monotonicity
#: on tickets, whose irreducible logsumexp branch shifts the folded
#: fraction with the tiled mixture ratios, on top of timing noise.
MONOTONE_TOL = 0.75

#: Positions evaluated per timed round (and checked for equivalence).
N_POSITIONS = 2

_TILERS = {
    "survival": (
        repro.suite.survival, "make_survival",
        lambda data, reps: data.update({
            "histories": np.tile(data["histories"], (reps, 1)),
            "first_capture": np.tile(data["first_capture"], reps),
        }),
    ),
    "tickets": (
        repro.suite.tickets, "make_tickets",
        lambda data, reps: data.update({
            "tickets": np.tile(data["tickets"], reps),
            "officer": np.tile(data["officer"], reps),
            "quota_phase": np.tile(data["quota_phase"], reps),
            "log_exposure": np.tile(data["log_exposure"], reps),
        }),
    ),
    "disease": (
        repro.suite.disease, "make_disease",
        # The I-spline basis expects ordered observation times.
        lambda data, reps: data.update({
            "t": np.sort(np.tile(data["t"], reps)),
            "y": np.tile(data["y"], reps),
        }),
    ),
}


def _tiled_model(name: str, reps: int):
    """A full-scale workload with its dataset tiled ``reps``x."""
    if reps == 1:
        return load_workload(name, scale=1.0)
    module, attr, tile = _TILERS[name]
    original = getattr(module, attr)

    def tiled_factory(scale=1.0, seed=None, _original=original):
        data = _original(scale=scale) if seed is None else _original(
            scale=scale, seed=seed
        )
        tile(data, reps)
        return data

    setattr(module, attr, tiled_factory)
    try:
        return load_workload(name, scale=1.0)
    finally:
        setattr(module, attr, original)


def _positions(model) -> list:
    rng = np.random.default_rng(0)
    return [
        model.initial_position(rng) + 0.1 * rng.standard_normal(model.dim)
        for _ in range(N_POSITIONS)
    ]


def _warmed(name: str, reps: int, rewritten: bool, xs: list):
    """A model with its tape recorded and validation replays drained."""
    with suffstats.override(rewritten):
        model = _tiled_model(name, reps)
        for x in xs:
            model.compiled_logp_and_grad(x)
        model.compiled_logp_and_grad(xs[0])
    return model


def _time_calls(fn, xs: list, calls: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            for x in xs:
                fn(x)
        best = min(best, time.perf_counter() - start)
    return best


def measure_point(
    name: str, reps: int, calls: int = CALLS, repeats: int = REPEATS
) -> dict:
    probe = _tiled_model(name, reps)
    xs = _positions(probe)

    with tape_compile.override(True):
        off = _warmed(name, reps, rewritten=False, xs=xs)
        on = _warmed(name, reps, rewritten=True, xs=xs)

        equivalent = True
        for x in xs:
            v_off, g_off = off.compiled_logp_and_grad(x)
            v_on, g_on = on.compiled_logp_and_grad(x)
            equivalent = equivalent and bool(
                np.isclose(v_on, v_off, rtol=1e-8, atol=1e-8)
                and np.allclose(g_on, g_off, rtol=1e-8, atol=1e-8)
            )

        best_off = _time_calls(off.compiled_logp_and_grad, xs, calls, repeats)
        best_on = _time_calls(on.compiled_logp_and_grad, xs, calls, repeats)

    stats = on.tape_stats()
    return {
        "workload": name,
        "reps": reps,
        "data_points": int(on.modeled_data_points),
        "off_us": 1e6 * best_off / (calls * len(xs)),
        "on_us": 1e6 * best_on / (calls * len(xs)),
        "speedup": best_off / best_on,
        "equivalent": equivalent,
        "active": int(stats["suffstats_active"]),
        "folded_ops": int(stats["suffstats_folded_ops"]),
        "folded_elements": int(stats["suffstats_folded_elements"]),
        "demotions": int(stats["suffstats_demotions"]),
    }


def measure_all() -> list:
    return [
        measure_point(name, reps)
        for name in REPS
        for reps in REPS[name]
    ]


def report(rows: list) -> None:
    print(
        f"{'workload':10s} {'reps':>4s} {'n_data':>8s} {'off us':>9s} "
        f"{'on us':>9s} {'speedup':>8s} {'folded':>7s}  equivalent"
    )
    for row in rows:
        print(
            f"{row['workload']:10s} {row['reps']:4d} {row['data_points']:8d} "
            f"{row['off_us']:9.1f} {row['on_us']:9.1f} "
            f"{row['speedup']:7.2f}x {row['folded_ops']:7d}  "
            f"{row['equivalent']}"
        )
    headline = _headline_speedup(rows)
    print(
        f"{HEADLINE} speedup at largest data size: {headline:.2f}x "
        f"(floor {HEADLINE_FLOOR:.1f}x)"
    )


def _headline_speedup(rows: list) -> float:
    ladder = [r for r in rows if r["workload"] == HEADLINE]
    return max(ladder, key=lambda r: r["reps"])["speedup"] if ladder else 0.0


def _growth_failures(rows: list) -> list:
    """Ladders whose speedup stops growing with data size."""
    failures = []
    for name in REPS:
        ladder = sorted(
            (r for r in rows if r["workload"] == name),
            key=lambda r: r["reps"],
        )
        if len(ladder) < 2:
            continue
        speedups = [r["speedup"] for r in ladder]
        for prev, cur in zip(speedups, speedups[1:]):
            if cur < prev * MONOTONE_TOL:
                failures.append(f"{name}: dip {prev:.2f}x -> {cur:.2f}x")
        if speedups[-1] < 0.9 * speedups[0]:
            failures.append(
                f"{name}: no growth ({speedups[0]:.2f}x -> "
                f"{speedups[-1]:.2f}x)"
            )
    return failures


def write_baseline(rows: list, path: Path = BASELINE_PATH) -> None:
    payload = {
        "calls": CALLS,
        "workloads": {
            f"{row['workload']}@{row['reps']}": {
                "speedup": round(row["speedup"], 3),
                "off_us": round(row["off_us"], 1),
                "on_us": round(row["on_us"], 1),
                "data_points": row["data_points"],
                "folded_ops": row["folded_ops"],
            }
            for row in rows
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def check_against_baseline(rows: list, path: Path = BASELINE_PATH) -> int:
    """0 when every point holds >= REGRESSION_FLOOR of its baseline."""
    baseline = json.loads(path.read_text())["workloads"]
    failures = []
    for row in rows:
        key = f"{row['workload']}@{row['reps']}"
        base = baseline.get(key)
        if base is None:
            continue
        # Multiplicative floor, with an absolute allowance of 0.25x that
        # only matters near 1x — there the run-to-run noise is a larger
        # fraction of the (small) speedup than REGRESSION_FLOOR admits.
        floor = min(
            REGRESSION_FLOOR * base["speedup"], base["speedup"] - 0.25
        )
        status = "ok" if row["speedup"] >= floor else "REGRESSED"
        print(
            f"{key:14s} speedup {row['speedup']:5.2f}x "
            f"(baseline {base['speedup']:.2f}x, floor {floor:.2f}x) {status}"
        )
        if row["speedup"] < floor:
            failures.append(key)
        if not row["equivalent"]:
            print(f"{key:14s} NOT EQUIVALENT")
            failures.append(key)
        if row["demotions"]:
            print(f"{key:14s} DEMOTED")
            failures.append(key)
    headline = _headline_speedup(rows)
    if headline < HEADLINE_FLOOR:
        print(
            f"{HEADLINE} headline {headline:.2f}x below "
            f"{HEADLINE_FLOOR:.1f}x floor"
        )
        failures.append("headline_floor")
    for failure in _growth_failures(rows):
        print(f"growth: {failure}")
        failures.append(failure)
    if failures:
        print(f"perf regression: {sorted(set(failures))}")
        return 1
    print("suffstats speedups hold against the baseline")
    return 0


def test_suffstats_speedup():
    """Pytest entry: reduced ladder, equivalence plus >=2x at 4x data."""
    rows = [
        measure_point("survival", reps, calls=20, repeats=2)
        for reps in (1, 4)
    ]
    report(rows)
    assert all(row["equivalent"] for row in rows), rows
    assert all(row["active"] == 1 for row in rows), rows
    assert all(row["demotions"] == 0 for row in rows), rows
    small, large = rows
    assert large["speedup"] >= 2.0, (
        f"survival at 4x data only reached {large['speedup']:.2f}x"
    )
    assert large["speedup"] > small["speedup"] * MONOTONE_TOL, rows


if __name__ == "__main__":
    measured = measure_all()
    report(measured)
    if "--check" in sys.argv:
        sys.exit(check_against_baseline(measured))
    write_baseline(measured)
    ok = all(row["equivalent"] and not row["demotions"] for row in measured)
    sys.exit(0 if ok and _headline_speedup(measured) >= HEADLINE_FLOOR else 1)
