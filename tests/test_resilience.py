"""Resilience-layer tests: deadlines, shedding, brownout, breakers, drain.

Everything here is tier-1 fast: pure state machines run on fake clocks, and
the end-to-end paths use tiny ``mh`` jobs. Deadline- and halt-mid-run cases
avoid wall-clock races by giving jobs budgets far larger than the deadline
window, so the cooperative stop always wins. The network/disk chaos matrix
lives in ``test_resilience_chaos.py``.
"""

import threading
import time

import numpy as np
import pytest

from repro.amortize.policy import Provenance
from repro.gateway import Gateway
from repro.gateway.sse import EventBroker, JobEvent, Subscriber
from repro.resilience import (
    AdmissionController,
    BreakerBoard,
    ChaosFault,
    CircuitBreaker,
    CircuitOpenError,
    LoadSheddedError,
)
from repro.serve import (
    FileJobQueue,
    InferenceServer,
    JobSpec,
    JobState,
    ResultStore,
)
from repro.telemetry.instrument import (
    RESILIENCE_BREAKER_STATE,
    RESILIENCE_BREAKER_TRIPS,
    RESILIENCE_BROWNOUT_DOWNGRADES,
    RESILIENCE_DEADLINE_EXPIRED,
    RESILIENCE_DEGRADED,
    RESILIENCE_DURABILITY_ERRORS,
    RESILIENCE_QUEUE_TORN_LINES,
    RESILIENCE_SHED,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_server(**kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("placement", False)
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("tracer", Tracer())
    return InferenceServer(**kwargs)


def spec_for(**overrides):
    overrides.setdefault("workload", "votes")
    overrides.setdefault("engine", "mh")
    overrides.setdefault("n_iterations", 60)
    overrides.setdefault("n_warmup", 30)
    overrides.setdefault("n_chains", 2)
    overrides.setdefault("elide", False)
    return JobSpec(**overrides)


# ---------------------------------------------------------------------------
# Job spec / provenance surface
# ---------------------------------------------------------------------------


class TestDeadlineSpec:
    def test_unset_deadline_keeps_pre_deadline_keys(self):
        # The digest payload must not mention deadline_s when unset, so
        # every key (and every stored result) from before the field existed
        # still matches. White-box on purpose: this is the compatibility
        # contract.
        import hashlib
        import json

        spec = spec_for()
        payload = spec.to_dict()
        payload["n_warmup"] = spec.resolved_warmup
        payload.pop("priority")
        payload.pop("checkpoint_interval")
        payload.pop("deadline_s", None)
        legacy = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:16]
        assert spec.key() == legacy

    def test_deadline_is_part_of_the_key_when_set(self):
        assert spec_for().key() != spec_for(deadline_s=5.0).key()
        assert spec_for(deadline_s=5.0).key() == spec_for(deadline_s=5.0).key()

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            spec_for(deadline_s=0.0)
        with pytest.raises(ValueError):
            spec_for(deadline_s=-1.0)

    def test_expired_state_is_terminal(self):
        assert JobState.EXPIRED.terminal

    def test_degraded_provenance_round_trips(self):
        prov = Provenance(mode="exact", tier="exact", degraded="deadline")
        assert Provenance.from_dict(prov.to_dict()).degraded == "deadline"
        # Dicts from before the field default to not-degraded.
        legacy = prov.to_dict()
        legacy.pop("degraded")
        assert Provenance.from_dict(legacy).degraded is None


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers_through_half_open(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            "dep", failure_threshold=3, reset_timeout=10.0,
            registry=registry, clock=clock,
        )
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert registry.sum_counter(RESILIENCE_BREAKER_TRIPS) == 1

        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # held off until the probe resolves
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "dep", failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker("dep", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_call_raises_when_open(self):
        breaker = CircuitBreaker("dep", failure_threshold=1)
        with pytest.raises(ZeroDivisionError):
            breaker.call(lambda: 1 / 0)
        with pytest.raises(CircuitOpenError) as err:
            breaker.call(lambda: 42)
        assert err.value.breaker == "dep"

    def test_state_gauge_tracks_transitions(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            "dep", failure_threshold=1, reset_timeout=1.0,
            registry=registry, clock=clock,
        )

        def gauge_value():
            return registry.gauge_value(
                RESILIENCE_BREAKER_STATE, {"breaker": "dep"}
            )

        breaker.record_failure()
        assert gauge_value() == 1.0
        clock.advance(1.0)
        assert breaker.state == "half_open"
        assert gauge_value() == 0.5
        breaker.record_success()
        breaker.record_failure()  # publish closed first? no: 1-threshold trips
        assert gauge_value() == 1.0

    def test_board_lazily_creates_and_snapshots(self):
        board = BreakerBoard(registry=MetricsRegistry(), failure_threshold=1)
        board.get("guide_store").record_failure()
        snapshot = board.snapshot()
        assert snapshot == {"guide_store": "open"}
        assert board.get("guide_store") is board.get("guide_store")


# ---------------------------------------------------------------------------
# Admission control and brownout
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_ewma_learns_service_times(self):
        ctrl = AdmissionController(ewma_alpha=0.5)
        spec = spec_for()
        assert ctrl.estimate(spec) == 0.0  # fails open: unknown family
        ctrl.observe(spec, 10.0)
        assert ctrl.estimate(spec) == 10.0
        ctrl.observe(spec, 20.0)
        assert ctrl.estimate(spec) == pytest.approx(15.0)

    def test_expected_wait_sums_queue_and_inflight_remainder(self):
        clock = FakeClock()
        ctrl = AdmissionController(clock=clock)
        running = spec_for(seed=1)
        queued = spec_for(seed=2)
        ctrl.observe(running, 8.0)
        ctrl.observe(queued, 8.0)
        ctrl.job_started(running)
        clock.advance(3.0)
        assert ctrl.expected_wait([queued]) == pytest.approx(5.0 + 8.0)
        clock.advance(100.0)  # the in-flight job never contributes < 0
        assert ctrl.expected_wait([queued]) == pytest.approx(8.0)

    def test_sheds_deadline_infeasible_with_retry_after(self):
        registry = MetricsRegistry()
        ctrl = AdmissionController(registry=registry)
        spec = spec_for(deadline_s=5.0)
        ctrl.observe(spec, 60.0)
        with pytest.raises(LoadSheddedError) as err:
            ctrl.check(spec, expected_wait=10.0)
        assert err.value.reason == "deadline_infeasible"
        assert err.value.retry_after >= 1.0
        assert registry.sum_counter(RESILIENCE_SHED) == 1

    def test_sheds_overload_past_max_expected_wait(self):
        ctrl = AdmissionController(max_expected_wait=10.0)
        with pytest.raises(LoadSheddedError) as err:
            ctrl.check(spec_for(), expected_wait=25.0)
        assert err.value.reason == "overload"
        assert err.value.retry_after == pytest.approx(15.0)
        ctrl.check(spec_for(), expected_wait=5.0)  # under the bound: admits

    def test_fails_open_for_unknown_families(self):
        ctrl = AdmissionController()
        ctrl.check(spec_for(deadline_s=1.0), expected_wait=0.0)

    def test_brownout_needs_sustained_overload_and_recovers(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            brownout_wait=10.0, brownout_hold_s=5.0, clock=clock
        )
        ctrl.note_wait(20.0)
        assert not ctrl.brownout_active()  # not sustained yet
        clock.advance(3.0)
        ctrl.note_wait(20.0)
        assert not ctrl.brownout_active()
        clock.advance(3.0)
        ctrl.note_wait(20.0)
        assert ctrl.brownout_active()  # 6s over threshold

        # A transient dip resets the recovery clock symmetrically.
        ctrl.note_wait(1.0)
        clock.advance(3.0)
        ctrl.note_wait(1.0)
        assert ctrl.brownout_active()
        clock.advance(3.0)
        ctrl.note_wait(1.0)
        assert not ctrl.brownout_active()


class TestServerShedding:
    def test_expensive_family_is_shed_for_tight_deadlines(self):
        registry = MetricsRegistry()
        admission = AdmissionController(registry=registry)
        with make_server(registry=registry, admission=admission) as server:
            admission.observe(spec_for(), 120.0)
            with pytest.raises(LoadSheddedError) as err:
                server.submit(spec_for(seed=3, deadline_s=2.0))
            assert err.value.reason == "deadline_infeasible"
            # Without a deadline the same family is admitted (fails open —
            # there is no bound configured).
            job = server.submit(spec_for(seed=4))
            assert job.state is JobState.QUEUED

    def test_overload_shedding_counts_queued_work(self):
        admission = AdmissionController(max_expected_wait=50.0)
        with make_server(admission=admission) as server:
            admission.observe(spec_for(), 120.0)
            server.submit(spec_for(seed=5))  # first one rides the empty queue
            with pytest.raises(LoadSheddedError) as err:
                server.submit(spec_for(seed=6))
            assert err.value.reason == "overload"

    def test_duplicate_of_queued_work_is_never_shed(self):
        admission = AdmissionController(max_expected_wait=1.0)
        with make_server(admission=admission) as server:
            admission.observe(spec_for(), 120.0)
            first = server.submit(spec_for(seed=7))
            dup = server.submit(spec_for(seed=7))  # folds onto the queued job
            assert dup.job_id == first.job_id


# ---------------------------------------------------------------------------
# Deadlines through the server
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_expired_before_start_is_dropped_without_running(self):
        registry = MetricsRegistry()
        with make_server(registry=registry) as server:
            job = server.submit(spec_for(deadline_s=0.01))
            time.sleep(0.05)
            ran = server.run_next()
            assert ran is job
            assert job.state is JobState.EXPIRED
            assert job.attempts == 0  # never reached the pool
            assert "deadline" in job.error
        assert registry.sum_counter(RESILIENCE_DEADLINE_EXPIRED) == 1

    def test_mid_run_deadline_serves_partial_draws_degraded(self):
        registry = MetricsRegistry()
        store = ResultStore()
        with make_server(registry=registry, store=store) as server:
            # Warmup 0 so the handful of iterations before the cooperative
            # stop are all servable; the budget is far beyond what 0.25s of
            # MH can produce, so the deadline always wins the race.
            spec = spec_for(
                n_iterations=200_000, n_warmup=0, deadline_s=0.25, seed=11
            )
            job = server.submit(spec)
            server.run_next()
            assert job.state is JobState.DONE
            assert job.provenance is not None
            assert job.provenance.degraded == "deadline"
            assert job.result is not None
            assert 1 <= job.result.n_kept < spec.budget_kept
            # Partial posteriors are timing-dependent: never memoized.
            assert store.get(spec.key()) is None
        assert registry.sum_counter(RESILIENCE_DEGRADED) == 1

    def test_undamaged_run_with_deadline_slack_is_bit_identical(self):
        # A generous deadline must not perturb the draws: the resilience
        # seams idle and the posterior matches a no-deadline run exactly.
        with make_server() as with_deadline, make_server() as plain:
            jobs = (
                with_deadline.submit(spec_for(seed=21, deadline_s=3600.0)),
                plain.submit(spec_for(seed=21)),
            )
            with_deadline.run_until_drained()
            plain.run_until_drained()
            a, b = (job.result.stacked() for job in jobs)
            assert a.shape == b.shape
            assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# Graceful halt (drain) through the pool
# ---------------------------------------------------------------------------


class TestGracefulHalt:
    def test_halt_parks_job_as_retrying_without_consuming_attempts(
        self, tmp_path
    ):
        with make_server(checkpoint_dir=str(tmp_path)) as server:
            job = server.submit(spec_for(
                n_iterations=200_000, n_warmup=0,
                checkpoint_interval=50, seed=31,
            ))
            server.pool.request_halt()  # sticky: fires on the next run_job
            server.run_next()
            assert job.state is JobState.RETRYING
            assert job.was_halted
            assert job.attempts == 0  # the halted attempt is not counted
            assert any(
                "halted" in note for note in job.attempt_errors
            )
            # The chains checkpointed on the way out: resume substrate.
            checkpoints = list(tmp_path.glob(f"{job.job_id}/chain-*.npz"))
            assert len(checkpoints) == job.spec.n_chains
            server.pool.clear_halt()

    def test_halt_then_resume_completes_the_job(self, tmp_path):
        with make_server(checkpoint_dir=str(tmp_path)) as server:
            job = server.submit(spec_for(
                seed=32, n_iterations=400, checkpoint_interval=100
            ))
            server.pool.request_halt()
            server.run_next()
            assert job.state is JobState.RETRYING
            server.pool.clear_halt()
            server.run_until_drained()
            assert job.state is JobState.DONE
            assert job.attempts == 1
            assert job.result.n_kept == job.spec.budget_kept

    def test_halted_run_resumes_bit_identical(self, tmp_path):
        with make_server(checkpoint_dir=str(tmp_path)) as halted, \
                make_server() as plain:
            spec = spec_for(
                seed=33, n_iterations=400, checkpoint_interval=100
            )
            hjob = halted.submit(spec)
            halted.pool.request_halt()
            halted.run_next()
            halted.pool.clear_halt()
            halted.run_until_drained()
            pjob = plain.submit(spec)
            plain.run_until_drained()
            assert np.array_equal(
                hjob.result.stacked(), pjob.result.stacked()
            )


# ---------------------------------------------------------------------------
# Store breaker degradation
# ---------------------------------------------------------------------------


class TestStoreBreaker:
    def test_store_failures_trip_the_breaker_and_degrade_to_misses(self):
        registry = MetricsRegistry()
        board = BreakerBoard(registry=registry, failure_threshold=2)
        with make_server(registry=registry, breakers=board) as server:
            calls = {"get": 0, "put": 0}

            def failing_get(key):
                calls["get"] += 1
                raise OSError(28, "no space left on device")

            def failing_put(key, record):
                calls["put"] += 1
                raise OSError(28, "no space left on device")

            server.store.get = failing_get
            server.store.put = failing_put
            with pytest.warns(RuntimeWarning):
                assert server._store_get("k1") is None
                assert server._store_get("k2") is None
            assert board.get("result_store").state == "open"
            # Open circuit: the store is no longer touched at all.
            server._store_put("k3", object())
            assert calls["put"] == 0
            assert server._store_get("k4") is None
            assert calls["get"] == 2
        assert registry.sum_counter(RESILIENCE_DURABILITY_ERRORS) >= 3

    def test_job_completes_when_the_store_write_fails(self):
        registry = MetricsRegistry()
        with make_server(registry=registry) as server:

            def failing_put(key, record):
                raise OSError(28, "no space left on device")

            server.store.put = failing_put
            job = server.submit(spec_for(seed=41))
            with pytest.warns(RuntimeWarning):
                server.run_until_drained()
            assert job.state is JobState.DONE
            assert job.result is not None
        assert registry.sum_counter(RESILIENCE_DURABILITY_ERRORS) >= 1


# ---------------------------------------------------------------------------
# Durable queue: torn-line tolerance
# ---------------------------------------------------------------------------


class TestTornQueueLines:
    def _torn_counter(self):
        from repro import telemetry

        return telemetry.get_registry().sum_counter(
            RESILIENCE_QUEUE_TORN_LINES
        )

    def test_torn_final_json_line_is_skipped_with_warning(self, tmp_path):
        queue = FileJobQueue(tmp_path / "queue.jsonl")
        queue.submit(spec_for(seed=51))
        queue.submit(spec_for(seed=52))
        before = self._torn_counter()
        with queue.path.open("a") as handle:
            handle.write('{"op": "submit", "id": "torn-en')  # crash mid-append
        with pytest.warns(RuntimeWarning, match="unparseable"):
            recovery = queue.load(compact=False)
        assert len(recovery.pending) == 2
        assert self._torn_counter() == before + 1

    def test_torn_line_with_invalid_utf8_is_quarantined(self, tmp_path):
        # A write torn inside a multi-byte UTF-8 sequence used to raise
        # UnicodeDecodeError from read_text() and take the whole queue down.
        queue = FileJobQueue(tmp_path / "queue.jsonl")
        queue.submit(spec_for(seed=53))
        before = self._torn_counter()
        with queue.path.open("ab") as handle:
            handle.write(b'{"op": "submit", "spec": "caf\xc3')  # torn é
        with pytest.warns(RuntimeWarning, match="undecodable"):
            recovery = queue.load(compact=False)
        assert len(recovery.pending) == 1
        assert recovery.pending[0].spec.seed == 53
        assert self._torn_counter() == before + 1

    def test_clean_queue_loads_without_counting(self, tmp_path):
        queue = FileJobQueue(tmp_path / "queue.jsonl")
        queue.submit(spec_for(seed=54))
        before = self._torn_counter()
        assert len(queue.load(compact=False).pending) == 1
        assert self._torn_counter() == before


# ---------------------------------------------------------------------------
# Bounded SSE subscribers
# ---------------------------------------------------------------------------


def _event(i):
    return JobEvent(event="rhat", data={"i": i})


class TestBoundedSubscriber:
    def test_drop_oldest_keeps_the_freshest_events(self):
        sub = Subscriber(limit=4)
        for i in range(10):
            sub.put(_event(i))
        assert sub.take_dropped() == 6
        got = [sub.get_nowait().data["i"] for _ in range(4)]
        assert got == [6, 7, 8, 9]
        assert sub.take_dropped() == 0

    def test_close_sentinel_survives_drop_oldest(self):
        sub = Subscriber(limit=1)
        sub.put(None)
        sub.put(_event(0))  # late event racing a closed stream
        assert sub.get_nowait() is None
        assert sub.take_dropped() == 0

    def test_broker_publishes_through_the_bound(self):
        broker = EventBroker()
        sub = broker.subscribe("job-1", limit=2)
        for i in range(5):
            broker.publish("job-1", _event(i))
        assert sub.take_dropped() == 3
        assert sub.get_nowait().data["i"] == 3
        assert sub.get_nowait().data["i"] == 4

    def test_terminal_event_still_reaches_a_saturated_subscriber(self):
        broker = EventBroker()
        sub = broker.subscribe("job-2", limit=2)
        for i in range(5):
            broker.publish("job-2", _event(i))
        broker.publish(
            "job-2", JobEvent(event="state", data={}, terminal=True)
        )
        seen = []
        while True:
            item = sub.get_nowait()
            if item is None:
                break
            seen.append(item)
        assert seen  # some events survived
        assert seen[-1].terminal


# ---------------------------------------------------------------------------
# Gateway drain and stop() reporting
# ---------------------------------------------------------------------------


class TestGatewayDrain:
    def test_drain_refuses_new_jobs_and_stop_reports_clean(self):
        registry = MetricsRegistry()
        server = make_server(registry=registry)
        with server, Gateway(server, port=0) as gateway:
            gateway.begin_drain()
            assert gateway.draining
            from repro.gateway.routes import GatewayDrainingError

            with pytest.raises(GatewayDrainingError):
                gateway.submit(spec_for(seed=61))
            health = gateway.health()
            assert health["status"] == "draining"
            assert health["accepting"] is False
            assert gateway.stop() == []
        server.pool.clear_halt()

    def test_drain_returns_503_with_retry_after_over_http(self):
        from repro.client import GatewayClient, GatewayUnavailable
        from repro.serve import RetryPolicy

        server = make_server()
        with server, Gateway(server, port=0) as gateway:
            client = GatewayClient(
                gateway.url,
                retry_policy=RetryPolicy(max_attempts=1),
            )
            gateway.begin_drain()
            with pytest.raises(GatewayUnavailable) as err:
                client.submit(spec_for(seed=62))
            assert err.value.status == 503
            assert err.value.retry_after == pytest.approx(5.0)
        server.pool.clear_halt()

    def test_stop_reports_stuck_threads_by_name(self):
        server = make_server()
        gateway = Gateway(server, port=0)
        with server:
            gateway.start()
            sleeper = threading.Thread(
                target=time.sleep, args=(1.0,),
                name="stuck-drain", daemon=True,
            )
            sleeper.start()
            gateway._drain_thread = sleeper
            with pytest.warns(RuntimeWarning, match="stuck-drain"):
                stuck = gateway.stop(timeout=0.05)
            assert stuck == ["stuck-drain"]
            sleeper.join()


# ---------------------------------------------------------------------------
# Brownout downgrade through the checked tier
# ---------------------------------------------------------------------------


class TestBrownoutDowngrade:
    def test_checked_escalation_downgrades_to_fast_under_brownout(self):
        from repro.inference.advi import ADVI, AdviResult
        from repro.amortize import GuideRecord
        from repro.amortize.guides import model_version, shape_signature
        from repro.suite import load_workload

        clock = FakeClock()
        registry = MetricsRegistry()
        admission = AdmissionController(
            brownout_wait=1.0, brownout_hold_s=1.0,
            registry=registry, clock=clock,
        )
        # Drive the controller into brownout through its public seam.
        admission.note_wait(10.0)
        clock.advance(2.0)
        admission.note_wait(10.0)
        assert admission.brownout_active()

        store = ResultStore()
        with make_server(
            registry=registry, admission=admission, store=store
        ) as server:
            model = load_workload("12cities")
            # An awful guide: PSIS fails closed, the gate demands
            # escalation — which brownout suppresses.
            advi = AdviResult(
                mu=np.full(model.dim, 50.0),
                log_sigma=np.zeros(model.dim),
            )
            server.guide_store.put(GuideRecord(
                guide_id=server.guide_store.key_for(model),
                family=model.name,
                data_shape=shape_signature(model),
                model_version=model_version(model),
                advi=advi,
            ))
            spec = JobSpec(
                workload="12cities", engine="mh", mode="checked",
                n_iterations=40, n_chains=2, elide=False,
            )
            job = server.submit(spec)
            server.run_next()
            assert job.state is JobState.DONE
            prov = job.provenance
            assert prov.degraded == "brownout"
            assert prov.tier == "fast" and not prov.escalated
            assert prov.k_hat is not None  # the gate still measured it
            # Degraded answers are never memoized.
            assert store.get(spec.key()) is None
        assert registry.sum_counter(RESILIENCE_BROWNOUT_DOWNGRADES) == 1
        assert registry.sum_counter(RESILIENCE_DEGRADED) == 1


# ---------------------------------------------------------------------------
# Chaos plan plumbing (unit; the live matrix is in test_resilience_chaos)
# ---------------------------------------------------------------------------


class TestChaosPlan:
    def test_plan_round_trips_and_claims_once(self, tmp_path):
        from repro.resilience import chaos

        plan = chaos.write_plan(
            str(tmp_path / "plan.json"),
            [ChaosFault(kind="enospc", target="store")],
        )
        with chaos.installed(plan):
            injector = chaos.active()
            assert injector is not None
            with pytest.raises(OSError) as err:
                injector.fail_write("store")
            assert err.value.errno == 28
            injector.fail_write("store")  # spent: second call is a no-op
            injector.fail_write("checkpoint")  # other targets untouched
        assert chaos.active() is None

    def test_unknown_kind_and_bad_target_are_rejected(self):
        with pytest.raises(ValueError):
            ChaosFault(kind="meteor")
        with pytest.raises(ValueError):
            ChaosFault(kind="enospc", target="ramdisk")

    def test_check_write_is_a_noop_without_a_plan(self):
        from repro.resilience import chaos

        chaos.check_write("store")
