"""Quickstart: define a Bayesian model, run NUTS, inspect the posterior.

This is the 60-second tour of the library's modeling and inference API —
the same API every BayesSuite workload is built on.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.diagnostics import format_summary, max_rhat
from repro.inference import NUTS, run_chains
from repro.models import BayesianModel, ParameterSpec
from repro.models import distributions as dist
from repro.models.transforms import Positive


class EightSchools(BayesianModel):
    """The classic eight-schools hierarchical meta-analysis model
    (non-centered parameterization)."""

    name = "eight-schools"

    def __init__(self):
        super().__init__()
        self.add_data(
            y=np.array([28.0, 8.0, -3.0, 7.0, -1.0, 1.0, 18.0, 12.0]),
            sigma=np.array([15.0, 10.0, 16.0, 11.0, 9.0, 11.0, 10.0, 18.0]),
        )

    @property
    def params(self):
        return [
            ParameterSpec("mu", 1, init=0.0),
            ParameterSpec("tau", 1, transform=Positive(), init=5.0),
            ParameterSpec("theta_raw", 8, init=0.0),
        ]

    def log_joint(self, p):
        theta = p["mu"] + p["tau"] * p["theta_raw"]
        return (
            dist.normal_lpdf(self.data("y"), theta, self.data("sigma"))
            + dist.normal_lpdf(p["theta_raw"], 0.0, 1.0)
            + dist.normal_lpdf(p["mu"], 0.0, 10.0)
            + dist.half_cauchy_lpdf(p["tau"], 5.0)
        )


def main():
    model = EightSchools()
    print(f"model: {model.name}, {model.dim} unconstrained dimensions")

    # Four chains, Stan-style: half the iterations are warmup.
    result = run_chains(model, NUTS(), n_iterations=1000, n_chains=4, seed=42)

    draws = result.stacked()
    print(f"\nR-hat (worst parameter): {max_rhat(draws):.3f}")
    print(f"divergences: {result.divergences}")
    print(f"gradient evaluations per chain: {result.chain_work}")

    print("\nposterior summary:")
    print(format_summary(draws, names=model.flat_param_names()))

    mu = result.constrained(model)["mu"]
    tau = result.constrained(model)["tau"]
    print(f"\npooled effect mu:  {mu.mean():6.2f} +- {mu.std():.2f}")
    print(f"between-school tau: {tau.mean():6.2f} +- {tau.std():.2f}")


if __name__ == "__main__":
    main()
