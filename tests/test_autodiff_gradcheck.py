"""Property-based finite-difference verification of every autodiff kernel.

For each primitive registered in :data:`repro.autodiff.ops.KERNELS` there is
a scalar-valued builder that exercises it from a flat input vector. The
analytic reverse-mode gradient is checked against central finite differences
at randomized points — in *interpreted* mode (graph of closures) and in
*compiled* mode (tape replay), so both execution paths of the same kernel
are covered. A coverage assertion fails the suite the moment someone
registers a kernel without adding a builder here.
"""

import zlib

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.compile import CompiledFunction
from repro.autodiff.functional import value_and_grad
from repro.autodiff.tape import Var, constant
from repro.suite.odes import FribergKarlsson, ode_solution_op  # registers ode_solution

# -----------------------------------------------------------------------------
# One scalar builder per kernel: name -> (input_dim, fn(Var) -> scalar Var).
# Builders keep inputs away from non-smooth points (|x|, clip thresholds)
# so central differences are valid.
# -----------------------------------------------------------------------------

_SYSTEM = FribergKarlsson()
_T_EVAL = np.array([0.0, 0.5, 1.0, 2.0])
_S0 = np.zeros((6, 6))
_S0[1:6, 3] = 1.0


def _y0_from_theta(theta):
    return _SYSTEM.initial_state(80.0, float(theta[3]))


def _ode_case(x):
    # Map the unconstrained input to strictly positive parameters around the
    # model's plausible values so the integration stays well-behaved.
    theta = ops.exp(x * 0.1) * constant(
        np.array([10.0, 35.0, 90.0, 5.0, 0.2, 0.2])
    )
    solution = ode_solution_op(
        _SYSTEM.rhs, _SYSTEM.jac_y, _SYSTEM.jac_theta,
        _y0_from_theta, _T_EVAL, theta, steps_per_interval=2, s0=_S0,
    )
    return ops.sum(ops.log(ops.clip_min(solution[1:, :], 1e-8)))


def _spd(x, n):
    """A differentiable SPD matrix built from the first n*n inputs."""
    m = ops.reshape(x[: n * n], (n, n))
    return ops.matmul(m, ops.transpose(m)) + constant(np.eye(n) * float(n))


CASES = {
    "add": (4, lambda x: ops.sum(ops.add(x[:2], x[2:]))),
    "sub": (4, lambda x: ops.sum(ops.sub(x[:2], x[2:]))),
    "mul": (4, lambda x: ops.sum(ops.mul(x[:2], x[2:]))),
    "div": (4, lambda x: ops.sum(ops.div(x[:2], ops.exp(x[2:])))),
    "neg": (3, lambda x: ops.sum(ops.neg(x))),
    "power": (3, lambda x: ops.sum(ops.power(ops.exp(x), 2.5))),
    "square": (3, lambda x: ops.sum(ops.square(x))),
    "absolute": (3, lambda x: ops.sum(ops.absolute(x + 10.0))),
    "exp": (3, lambda x: ops.sum(ops.exp(x))),
    "log": (3, lambda x: ops.sum(ops.log(ops.exp(x) + 1.0))),
    "log1p": (3, lambda x: ops.sum(ops.log1p(ops.exp(x)))),
    "expm1": (3, lambda x: ops.sum(ops.expm1(x))),
    "sqrt": (3, lambda x: ops.sum(ops.sqrt(ops.exp(x) + 1.0))),
    "sin": (3, lambda x: ops.sum(ops.sin(x))),
    "cos": (3, lambda x: ops.sum(ops.cos(x))),
    "tanh": (3, lambda x: ops.sum(ops.tanh(x))),
    "sigmoid": (3, lambda x: ops.sum(ops.sigmoid(x))),
    "softplus": (3, lambda x: ops.sum(ops.softplus(x))),
    "log_sigmoid": (3, lambda x: ops.sum(ops.log_sigmoid(x))),
    "lgamma": (3, lambda x: ops.sum(ops.lgamma(ops.exp(x) + 0.5))),
    "erf": (3, lambda x: ops.sum(ops.erf(x))),
    "normal_cdf": (3, lambda x: ops.sum(ops.normal_cdf(x))),
    "arctan": (3, lambda x: ops.sum(ops.arctan(x))),
    "reduce_sum": (
        6,
        lambda x: ops.sum(
            ops.square(ops.reduce_sum(ops.reshape(x, (2, 3)), axis=0))
        ),
    ),
    "logsumexp": (4, lambda x: ops.logsumexp(x)),
    "dot": (6, lambda x: ops.dot(x[:3], x[3:])),
    "matvec": (
        6,
        lambda x: ops.sum(ops.matvec(ops.reshape(x[:4], (2, 2)), x[4:])),
    ),
    "matmul": (
        8,
        lambda x: ops.sum(
            ops.matmul(ops.reshape(x[:4], (2, 2)), ops.reshape(x[4:], (2, 2)))
        ),
    ),
    "reshape": (6, lambda x: ops.sum(ops.square(ops.reshape(x, (3, 2))))),
    "take": (5, lambda x: ops.sum(ops.take(x, np.array([0, 2, 2, 4])))),
    "getitem": (6, lambda x: ops.sum(ops.square(x[1:5]))),
    "concat": (4, lambda x: ops.sum(ops.square(ops.concat([x[:2], x[2:]])))),
    "stack": (4, lambda x: ops.sum(ops.square(ops.stack([x[:2], x[2:]])))),
    "cumsum": (4, lambda x: ops.sum(ops.square(ops.cumsum(x)))),
    "outer": (5, lambda x: ops.sum(ops.outer(x[:2], x[2:]))),
    "transpose": (
        6,
        lambda x: ops.sum(
            ops.matmul(constant(np.ones((2, 3))) * 0.5 + 1.0,
                       ops.transpose(ops.reshape(x, (2, 3))))
        ),
    ),
    "where": (
        4,
        lambda x: ops.sum(
            ops.where(np.array([True, False, True, False]), ops.exp(x), x * 3.0)
        ),
    ),
    "clip_min": (4, lambda x: ops.sum(ops.clip_min(x + 10.0, 0.5))),
    "quadratic_form_inv": (
        9,
        lambda x: ops.quadratic_form_inv(
            _spd(x, 3), np.array([0.3, -0.7, 1.1])
        ),
    ),
    "logdet_spd": (9, lambda x: ops.logdet_spd(_spd(x, 3))),
    "solve_spd": (
        12,
        lambda x: ops.sum(ops.solve_spd(_spd(x, 3), x[9:])),
    ),
    "cholesky_lower": (
        9,
        lambda x: ops.sum(ops.cholesky_lower(_spd(x, 3))),
    ),
    "ode_solution": (6, _ode_case),
}


def test_every_kernel_has_a_gradcheck_case():
    missing = set(ops.KERNELS) - set(CASES)
    assert not missing, (
        f"kernels without a finite-difference case: {sorted(missing)} — "
        "add builders to tests/test_autodiff_gradcheck.py"
    )


def _finite_difference(evaluate, x, eps):
    fd = np.empty_like(x)
    for i in range(x.size):
        bump = np.zeros_like(x)
        bump[i] = eps
        hi, _ = evaluate(x + bump)
        lo, _ = evaluate(x - bump)
        fd[i] = (hi - lo) / (2.0 * eps)
    return fd


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("mode", ["interpreted", "compiled"])
@pytest.mark.parametrize("name", sorted(CASES), ids=str)
def test_kernel_gradient_matches_finite_differences(name, mode, seed):
    dim, fn = CASES[name]
    rng = np.random.default_rng(zlib.crc32(name.encode()) * 7919 + seed)
    x = rng.normal(scale=0.7, size=dim)

    if mode == "interpreted":
        evaluate = lambda p: value_and_grad(fn, p)  # noqa: E731
    else:
        compiled = CompiledFunction(fn, validate_calls=0)
        compiled(x)  # record
        evaluate = compiled
        assert compiled.broken is None, (
            f"{name}: tape did not compile ({compiled.broken})"
        )

    value, grad = evaluate(x)
    assert np.isfinite(value)
    eps = 1e-5 if name == "ode_solution" else 1e-6
    fd = _finite_difference(evaluate, x, eps)
    assert np.allclose(grad, fd, rtol=5e-4, atol=5e-6), (
        f"{name} [{mode}]: analytic gradient disagrees with central "
        f"differences\nanalytic={grad}\nfd={fd}"
    )

    if mode == "compiled":
        assert evaluate.stats["replays"] > 0
        assert evaluate.stats["fallbacks"] == 0
