"""Job progress events: the pub/sub layer behind ``GET /v1/jobs/{id}/events``.

The gateway publishes every lifecycle step of a job — ``state`` events for
QUEUED/RUNNING/RETRYING/terminal transitions, ``rhat`` events for each
online convergence checkpoint (fed by the :class:`~repro.serve.server.
InferenceServer` ``on_progress`` seam) — into an :class:`EventBroker`.
Subscribers get the job's full history first (a late subscriber misses
nothing) and then live events until the terminal one, after which the
stream is closed with a ``None`` sentinel.

Wire format is Server-Sent Events (``text/event-stream``)::

    event: rhat
    data: {"job_id": "ab12", "kept": 40, "rhat": 1.52}

The schema of each event type is documented in ``docs/gateway.md``.
"""

from __future__ import annotations

import json
import math
import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Per-job history cap. R-hat checkpoints dominate and are bounded by
#: budget/check_interval; the cap only guards against pathological specs.
DEFAULT_HISTORY_LIMIT = 1024

#: Per-subscriber mailbox cap. A subscriber that stops reading (a stalled
#: proxy, a laptop asleep mid-``repro watch``) must not buffer events
#: without bound inside the gateway; past this, the oldest events are
#: dropped and the connection is told how many it missed.
DEFAULT_SUBSCRIBER_LIMIT = 256


def json_safe(value):
    """A copy with non-finite floats replaced by ``None``.

    Strict JSON has no Infinity/NaN token (``json.dumps`` would emit the
    Python-only ``Infinity``), and an R-hat before the chains mix *is*
    ``inf``. Internal state keeps the real floats; this runs only at the
    wire boundary (:meth:`JobEvent.render`, the handler's JSON writer).
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


@dataclass(frozen=True)
class JobEvent:
    """One progress event of one job."""

    event: str
    data: Dict
    #: Terminal events end the stream for every subscriber.
    terminal: bool = False

    def render(self) -> bytes:
        """The SSE wire form (``event:`` + single-line ``data:`` + blank)."""
        payload = json.dumps(json_safe(self.data), sort_keys=True)
        return f"event: {self.event}\ndata: {payload}\n\n".encode("utf-8")


#: SSE comment line used as a keep-alive between events.
KEEPALIVE = b": keep-alive\n\n"


class Subscriber:
    """Bounded mailbox for one SSE connection.

    ``put`` never blocks the publisher: when the mailbox is full — the
    subscriber is slow or gone — the *oldest* queued event is discarded and
    counted, so the connection keeps the freshest view of the job and the
    handler can emit a ``dropped`` notice. The ``None`` close sentinel is
    always the final event published to a stream; if drop-oldest ever meets
    it, the sentinel is kept (the stream is over) and the newcomer is the
    one discarded.
    """

    def __init__(self, limit: int = DEFAULT_SUBSCRIBER_LIMIT) -> None:
        if limit < 1:
            raise ValueError("subscriber limit must be positive")
        self.limit = limit
        self._queue: "queue.Queue" = queue.Queue(maxsize=limit)
        self._lock = threading.Lock()
        self._dropped = 0

    def put(self, event: Optional[JobEvent]) -> None:
        with self._lock:  # serialize publishers; the consumer needs no lock
            while True:
                try:
                    self._queue.put_nowait(event)
                    return
                except queue.Full:
                    try:
                        oldest = self._queue.get_nowait()
                    except queue.Empty:
                        continue  # consumer drained it; retry the put
                    if oldest is None:
                        self._queue.put_nowait(None)
                        return
                    self._dropped += 1

    def get(self, timeout: Optional[float] = None) -> Optional[JobEvent]:
        """Next event (blocking); raises ``queue.Empty`` on timeout."""
        return self._queue.get(timeout=timeout)

    def get_nowait(self) -> Optional[JobEvent]:
        return self._queue.get_nowait()

    def empty(self) -> bool:
        return self._queue.empty()

    def take_dropped(self) -> int:
        """Drop count since the last call, resetting it to zero."""
        with self._lock:
            dropped, self._dropped = self._dropped, 0
        return dropped


@dataclass
class _JobStream:
    history: List[JobEvent] = field(default_factory=list)
    subscribers: List[Subscriber] = field(default_factory=list)
    closed: bool = False
    dropped: int = 0


class EventBroker:
    """Per-job event history plus live fan-out to SSE subscribers."""

    def __init__(self, history_limit: int = DEFAULT_HISTORY_LIMIT) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be positive")
        self.history_limit = history_limit
        self._lock = threading.Lock()
        self._streams: Dict[str, _JobStream] = {}

    def _stream(self, job_id: str) -> _JobStream:
        stream = self._streams.get(job_id)
        if stream is None:
            stream = self._streams[job_id] = _JobStream()
        return stream

    def publish(self, job_id: str, event: JobEvent) -> int:
        """Record an event and deliver it to live subscribers.

        Returns the number of subscribers the event was delivered to.
        Publishing to a closed stream is a no-op (a late RETRYING callback
        racing a terminal event cannot reopen the stream).
        """
        with self._lock:
            stream = self._stream(job_id)
            if stream.closed:
                return 0
            if len(stream.history) < self.history_limit:
                stream.history.append(event)
            else:
                stream.dropped += 1
            subscribers = list(stream.subscribers)
            if event.terminal:
                stream.closed = True
                stream.subscribers = []
        for sub in subscribers:
            sub.put(event)
            if event.terminal:
                sub.put(None)
        return len(subscribers)

    def subscribe(
        self, job_id: str, limit: int = DEFAULT_SUBSCRIBER_LIMIT
    ) -> Subscriber:
        """A mailbox preloaded with the job's history; ``None`` ends the
        stream. The mailbox is bounded (``limit``): a subscriber that stops
        reading loses oldest events, counted via
        :meth:`Subscriber.take_dropped`, instead of growing the gateway."""
        sub = Subscriber(limit=limit)
        with self._lock:
            stream = self._stream(job_id)
            history = list(stream.history)
            closed = stream.closed
            if not closed:
                stream.subscribers.append(sub)
        for event in history:
            sub.put(event)
        if closed:
            sub.put(None)
        return sub

    def unsubscribe(self, job_id: str, sub: Subscriber) -> None:
        with self._lock:
            stream = self._streams.get(job_id)
            if stream is not None and sub in stream.subscribers:
                stream.subscribers.remove(sub)

    def history(self, job_id: str) -> List[JobEvent]:
        """The recorded events of one job (status displays, tests)."""
        with self._lock:
            stream = self._streams.get(job_id)
            return list(stream.history) if stream is not None else []

    def rhat_trace(self, job_id: str) -> List[Tuple[int, float]]:
        """(kept, rhat) pairs published so far — the live convergence view."""
        return [
            (int(event.data["kept"]), float(event.data["rhat"]))
            for event in self.history(job_id)
            if event.event == "rhat"
        ]

    def discard(self, job_id: str) -> None:
        """Drop a job's history (long-lived deployments GC old jobs)."""
        with self._lock:
            stream = self._streams.pop(job_id, None)
        if stream is not None:
            for sub in stream.subscribers:
                sub.put(None)


def parse_sse(lines) -> "Optional[Tuple[str, Dict]]":
    """Consume one SSE event from an iterable of text lines.

    Returns ``(event, data)`` or None at end of stream. Comment lines
    (keep-alives) are skipped; multi-line ``data:`` fields are joined per
    the SSE spec before JSON decoding.
    """
    event: Optional[str] = None
    data_lines: List[str] = []
    for raw in lines:
        line = raw.rstrip("\r\n") if isinstance(raw, str) else raw.decode(
            "utf-8"
        ).rstrip("\r\n")
        if not line:
            if data_lines:
                return (
                    event or "message",
                    json.loads("\n".join(data_lines)),
                )
            event, data_lines = None, []
            continue
        if line.startswith(":"):
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())
    return None
