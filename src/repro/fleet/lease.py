"""Per-shard leases with fencing epochs.

A shard of the fleet's job queue has at most one *drainer* at a time: the
replica holding the shard's lease. The lease is a small JSON state file on
the shared queue directory::

    {"shard": 3, "owner": "replica-b", "epoch": 7, "expires_at": 1754650000.0}

and follows the epoch-fencing idiom the worker supervisor introduced in
PR 2 (stale chain events carry an old epoch and are dropped): every
acquisition — first claim, renewal after expiry, takeover from a dead
replica — increments ``epoch``, and every durable mutation the holder
performs first calls :meth:`ShardLease.check`, which verifies that the
on-disk epoch is still *this holder's* epoch. A replica that stalls (GC
pause, SIGSTOP, a wedged NFS write) past its TTL and then resumes cannot
clobber work its successor already claimed: its next guarded write raises
:class:`LeaseLostError` (a :class:`~repro.resilience.errors.
MutationFencedError`) instead of landing.

Lease-state *transitions* (acquire, renew, release) are serialized by a
short-lived ``O_CREAT | O_EXCL`` mutation lock next to the state file, so
the read-verify-write window is atomic across processes on one filesystem.
A lock left behind by a crashed process is broken by age: whoever finds it
older than :data:`LOCK_BREAK_SECONDS` renames it aside (exactly one
renamer wins) and competition resumes. The lock only guards the few-
microsecond state transition; the shard's data path is guarded by the
epoch fence, never by the lock.

Expiry uses wall-clock :func:`time.time` (shared across the replicas of
one box or one mounted filesystem), injectable as ``clock`` for tests.
The chaos harness can force a holder to observe its lease as lost
(``lease_expire`` in a ``REPRO_CHAOS`` plan) — the injection point is
inside :meth:`check`/:meth:`renew`, exactly where a real expiry surfaces.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.resilience.errors import MutationFencedError

#: A mutation lock older than this is presumed abandoned and broken.
LOCK_BREAK_SECONDS = 5.0
#: How long an acquire/renew waits for the mutation lock before giving up.
LOCK_TIMEOUT_SECONDS = 2.0
#: Default lease TTL; renewals should run at a small fraction of this.
DEFAULT_TTL_SECONDS = 10.0


class LeaseLostError(MutationFencedError):
    """The caller's lease epoch is no longer the shard's live epoch."""


@dataclass(frozen=True)
class LeaseState:
    """The on-disk record of one shard's current lease."""

    shard: int
    owner: str
    epoch: int
    expires_at: float

    def live(self, now: Optional[float] = None) -> bool:
        return (time.time() if now is None else now) < self.expires_at

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "LeaseState":
        return cls(
            shard=int(payload["shard"]),
            owner=str(payload["owner"]),
            epoch=int(payload["epoch"]),
            expires_at=float(payload["expires_at"]),
        )


def lease_path(root, shard: int) -> Path:
    return Path(root) / "leases" / f"shard-{shard:02d}.json"


def read_lease(root, shard: int) -> Optional[LeaseState]:
    """The shard's current lease state, or None (absent/torn file).

    A torn state file (crash mid-replace on a non-atomic filesystem) reads
    as "no lease": the next acquirer starts a fresh epoch *above* any it
    has seen, so fencing still rejects the torn epoch's writers.
    """
    path = lease_path(root, shard)
    try:
        return LeaseState.from_dict(json.loads(path.read_text()))
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
        return None


class _MutationLock:
    """Cross-process O_EXCL lock for lease-state transitions."""

    def __init__(
        self,
        path: Path,
        timeout: float = LOCK_TIMEOUT_SECONDS,
        break_after: float = LOCK_BREAK_SECONDS,
    ) -> None:
        self.path = path
        self.timeout = timeout
        self.break_after = break_after

    def __enter__(self) -> "_MutationLock":
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(fd)
                return self
            except FileExistsError:
                self._maybe_break_stale()
            except FileNotFoundError:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                continue
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"could not take lease mutation lock {self.path} "
                    f"within {self.timeout:.1f}s"
                )
            time.sleep(0.005)

    def _maybe_break_stale(self) -> None:
        """Rename an abandoned lock aside; at most one breaker succeeds."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except FileNotFoundError:
            return
        if age < self.break_after:
            return
        stale = self.path.with_name(
            f"{self.path.name}.stale-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(self.path, stale)
        except FileNotFoundError:
            return  # another breaker won the rename
        try:
            os.unlink(stale)
        except OSError:
            pass

    def __exit__(self, *exc_info) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


class ShardLease:
    """One replica's handle on one shard's lease."""

    def __init__(
        self,
        root,
        shard: int,
        replica_id: str,
        ttl: float = DEFAULT_TTL_SECONDS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.root = Path(root)
        self.shard = int(shard)
        self.replica_id = replica_id
        self.ttl = float(ttl)
        self.clock = clock
        #: The epoch this holder acquired; 0 until :meth:`acquire` succeeds.
        self.epoch = 0

    # -- state-file plumbing ---------------------------------------------------

    @property
    def path(self) -> Path:
        return lease_path(self.root, self.shard)

    def _lock(self) -> _MutationLock:
        return _MutationLock(self.path.with_suffix(".lock"))

    def _write_state(self, state: LeaseState) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(
            f"{self.path.name}.tmp-{uuid.uuid4().hex[:8]}"
        )
        tmp.write_text(json.dumps(state.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def peek(self) -> Optional[LeaseState]:
        return read_lease(self.root, self.shard)

    @property
    def held(self) -> bool:
        """Cheap local view: has this handle acquired and not lost/released?
        (Authoritative answer is :meth:`check`, which reads the disk.)"""
        return self.epoch > 0

    # -- transitions -----------------------------------------------------------

    def acquire(self) -> bool:
        """Try to take the shard's lease; True on success.

        Succeeds when the shard is unleased, the current lease has expired,
        or this replica already holds it (a restart re-adopting its own
        shard). Every success installs a **new, higher epoch** — even a
        self-re-acquire — so any writer fenced on the previous epoch stays
        fenced; there is no path back to an old epoch.
        """
        with self._lock():
            state = self.peek()
            now = self.clock()
            if (
                state is not None
                and state.live(now)
                and state.owner != self.replica_id
            ):
                return False
            previous = state.epoch if state is not None else 0
            self.epoch = max(previous, self.epoch) + 1
            self._write_state(
                LeaseState(
                    shard=self.shard,
                    owner=self.replica_id,
                    epoch=self.epoch,
                    expires_at=now + self.ttl,
                )
            )
            return True

    def renew(self) -> None:
        """Extend the lease TTL; raises :class:`LeaseLostError` when the
        on-disk epoch is no longer ours (a successor claimed the shard)."""
        with self._lock():
            self._verify()
            self._write_state(
                LeaseState(
                    shard=self.shard,
                    owner=self.replica_id,
                    epoch=self.epoch,
                    expires_at=self.clock() + self.ttl,
                )
            )

    def release(self) -> None:
        """Give the shard up cleanly (a graceful drain); idempotent.

        Only removes the state file while it still carries our epoch — a
        stale holder releasing after a takeover must not evict its
        successor.
        """
        if self.epoch == 0:
            return
        with self._lock():
            state = self.peek()
            if (
                state is not None
                and state.owner == self.replica_id
                and state.epoch == self.epoch
            ):
                try:
                    os.unlink(self.path)
                except FileNotFoundError:
                    pass
        self.epoch = 0

    # -- the fence -------------------------------------------------------------

    def check(self) -> None:
        """Raise :class:`LeaseLostError` unless this epoch is still live.

        This is the mutation guard wired into the shard's durable queue:
        called immediately before every consumer-side append, compaction
        rewrite, and truncate. No lock is taken — a plain read suffices,
        because the only way the check can pass while a successor exists is
        the successor not having claimed yet, in which case our lease is
        genuinely still live.
        """
        from repro.resilience import chaos

        injector = chaos.active()
        if injector is not None and injector.lease_fault(self.shard):
            self.epoch = 0
            raise LeaseLostError(
                f"shard {self.shard}: lease expired (injected chaos)"
            )
        self._verify()

    def _verify(self) -> None:
        if self.epoch == 0:
            raise LeaseLostError(
                f"shard {self.shard}: no lease held by {self.replica_id!r}"
            )
        state = self.peek()
        if state is None:
            raise LeaseLostError(
                f"shard {self.shard}: lease state vanished "
                f"(held epoch {self.epoch})"
            )
        if state.epoch != self.epoch or state.owner != self.replica_id:
            raise LeaseLostError(
                f"shard {self.shard}: fenced at epoch {self.epoch} — "
                f"now owned by {state.owner!r} at epoch {state.epoch}"
            )
        if not state.live(self.clock()):
            raise LeaseLostError(
                f"shard {self.shard}: lease (epoch {self.epoch}) expired "
                f"{self.clock() - state.expires_at:.2f}s ago"
            )

    def expires_in(self) -> Optional[float]:
        """Seconds until expiry of *our* lease, or None when not held."""
        state = self.peek()
        if (
            state is None
            or state.owner != self.replica_id
            or state.epoch != self.epoch
        ):
            return None
        return state.expires_at - self.clock()
