"""Determinism regression: the serve worker pool vs the sequential driver.

The service's whole result-store/dedupe/elision story rests on one guarantee:
chains executed on the :class:`~repro.serve.workers.ChainWorkerPool` are
bit-identical to :func:`repro.inference.run_chains`. Workers rebuild the
model from the registry and derive RNGs through the shared
:func:`~repro.inference.chain.chain_start`, so placement (process, order,
pool size) must not leak into the draws. Checked here on two suite
workloads with different engines.
"""

import numpy as np
import pytest

from repro.inference import build_engine, run_chains
from repro.serve import ChainWorkerPool, JobSpec, parallel_run_chains
from repro.suite import load_workload

CASES = [
    pytest.param(
        JobSpec(workload="votes", engine="mh", n_iterations=200,
                n_warmup=100, n_chains=3, seed=5, elide=False),
        id="votes-mh",
    ),
    pytest.param(
        JobSpec(workload="12cities", engine="nuts", n_iterations=48,
                n_warmup=24, n_chains=2, seed=1, scale=0.25, elide=False),
        id="12cities-nuts",
    ),
]


def _assert_bit_identical(parallel, sequential):
    assert parallel.n_chains == sequential.n_chains
    assert parallel.model_name == sequential.model_name
    for par, seq in zip(parallel.chains, sequential.chains):
        np.testing.assert_array_equal(par.samples, seq.samples)
        np.testing.assert_array_equal(par.logps, seq.logps)
        np.testing.assert_array_equal(par.work_per_iteration,
                                      seq.work_per_iteration)
        assert par.n_warmup == seq.n_warmup
        assert par.accept_rate == seq.accept_rate
        assert par.divergences == seq.divergences
        assert par.step_size == seq.step_size
        if seq.tree_depths is None:
            assert par.tree_depths is None
        else:
            np.testing.assert_array_equal(par.tree_depths, seq.tree_depths)


@pytest.mark.parametrize("spec", CASES)
def test_pool_matches_sequential_driver(spec):
    parallel = parallel_run_chains(spec)
    sequential = run_chains(
        load_workload(spec.workload, scale=spec.scale,
                      seed=spec.dataset_seed),
        spec.build_sampler(),
        n_iterations=spec.n_iterations,
        n_warmup=spec.resolved_warmup,
        n_chains=spec.n_chains,
        seed=spec.seed,
        initial_jitter=spec.initial_jitter,
    )
    _assert_bit_identical(parallel, sequential)


def test_result_independent_of_pool_width():
    spec = JobSpec(workload="votes", engine="mh", n_iterations=120,
                   n_warmup=60, n_chains=4, seed=2, elide=False)
    with ChainWorkerPool(n_workers=1) as serial_pool:
        one = parallel_run_chains(spec, pool=serial_pool)
    with ChainWorkerPool(n_workers=4) as wide_pool:
        four = parallel_run_chains(spec, pool=wide_pool)
    _assert_bit_identical(one, four)
