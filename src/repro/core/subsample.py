"""Data-subsampling guidance from the LLC model (paper Section VII-B).

"With larger datasets applied to Bayesian models, simply scaling up the LLC
is not the solution. Instead, the inference algorithm should be tuned to
subsample the data such that the working set fits the LLC. Figure 3 can be
used to estimate the proper sub-sampled data size."

This module implements exactly that recommendation: given a workload profile
and a platform, find the largest data fraction whose projected working set
(for the planned number of concurrently active chains) fits the usable LLC.
The working-set model is the same one the machine model uses, so "fits"
here is consistent with "no capacity misses" there. Statistically, the
subsampled likelihood corresponds to the paper's cited subsampling MCMC
methods (Firefly MC, Quiroz et al.) and trades a little posterior precision
for cache-resident execution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.machine import LLC_USABLE_FRACTION
from repro.arch.platforms import Platform
from repro.arch.profile import WorkloadProfile


@dataclass(frozen=True)
class SubsamplePlan:
    """Recommendation for one (workload, platform, chains) combination."""

    workload: str
    platform: str
    n_active_chains: int
    data_fraction: float          # fraction of the data to keep (<= 1.0)
    projected_working_set_bytes: float
    fits: bool

    @property
    def subsampling_needed(self) -> bool:
        return self.data_fraction < 1.0


def _scaled_working_set(profile: WorkloadProfile, fraction: float) -> float:
    """Working set when the modeled data is subsampled to ``fraction``.

    The data-proportional parts of the working set (the data itself and the
    per-observation intermediates) scale with the fraction; the
    dimension-proportional sampler state does not.
    """
    scaled = replace(
        profile,
        modeled_data_bytes=int(profile.modeled_data_bytes * fraction),
        modeled_data_points=int(profile.modeled_data_points * fraction),
        tape_bytes=int(profile.tape_bytes * fraction),
        tape_intermediate_bytes=int(profile.tape_intermediate_bytes * fraction),
        tape_gather_bytes=int(profile.tape_gather_bytes * fraction),
    )
    return scaled.working_set_bytes


def recommend_subsample(
    profile: WorkloadProfile,
    platform: Platform,
    n_active_chains: int = 4,
    resolution: float = 0.05,
    min_fraction: float = 0.05,
) -> SubsamplePlan:
    """Largest data fraction whose aggregate working set fits the LLC."""
    if not 0.0 < resolution <= 1.0:
        raise ValueError("resolution must be in (0, 1]")
    if n_active_chains < 1:
        raise ValueError("n_active_chains must be >= 1")

    usable = LLC_USABLE_FRACTION * platform.llc_bytes

    def occupancy(fraction: float) -> float:
        return _scaled_working_set(profile, fraction) * n_active_chains

    # Already fits: no subsampling needed.
    if occupancy(1.0) <= usable:
        return SubsamplePlan(
            workload=profile.name,
            platform=platform.codename,
            n_active_chains=n_active_chains,
            data_fraction=1.0,
            projected_working_set_bytes=occupancy(1.0),
            fits=True,
        )

    # Walk down in `resolution` steps to the largest fitting fraction.
    fraction = 1.0
    while fraction - resolution >= min_fraction:
        fraction = round(fraction - resolution, 10)
        if occupancy(fraction) <= usable:
            return SubsamplePlan(
                workload=profile.name,
                platform=platform.codename,
                n_active_chains=n_active_chains,
                data_fraction=fraction,
                projected_working_set_bytes=occupancy(fraction),
                fits=True,
            )

    # Even the minimum fraction does not fit (fixed state dominates).
    return SubsamplePlan(
        workload=profile.name,
        platform=platform.codename,
        n_active_chains=n_active_chains,
        data_fraction=min_fraction,
        projected_working_set_bytes=occupancy(min_fraction),
        fits=occupancy(min_fraction) <= usable,
    )
