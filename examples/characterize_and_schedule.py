"""Characterize BayesSuite workloads and schedule them across platforms.

Reproduces the paper's Section V flow end to end on three workloads:

1. measure each workload's static features (modeled data size) and profile
   it with a short calibration run;
2. simulate hardware counters on both Table II platforms;
3. fit the LLC-miss predictor and let the scheduler place each job;
4. compare against the all-Broadwell baseline.

Run:  python examples/characterize_and_schedule.py
"""

from repro.arch import BROADWELL, SKYLAKE, MachineModel, profile_workload
from repro.core.predictor import LlcMissPredictor, characterization_points
from repro.core.scheduler import PlatformScheduler
from repro.inference import NUTS, run_chains
from repro.suite import load_workload

WORKLOADS = ("votes", "ad", "tickets")   # compute-bound, LLC-bound, extreme


def main():
    print("profiling workloads (short calibration runs)...")
    models = {name: load_workload(name) for name in WORKLOADS}
    profiles = {
        name: profile_workload(model, calibration_iterations=30)
        for name, model in models.items()
    }

    print(f"\n{'workload':<10s} {'data bytes':>11s} {'WS/chain MB':>12s}")
    for name, profile in profiles.items():
        print(f"{name:<10s} {profile.modeled_data_bytes:>11,d} "
              f"{profile.working_set_bytes / 1e6:>12.2f}")

    print(f"\n{'workload':<10s} {'platform':<10s} {'IPC':>5s} "
          f"{'LLC MPKI':>9s} {'BW MB/s':>8s}")
    for name, profile in profiles.items():
        for platform in (SKYLAKE, BROADWELL):
            c = MachineModel(platform).counters(profile, n_cores=4, n_chains=4)
            print(f"{name:<10s} {platform.codename:<10s} {c.ipc:>5.2f} "
                  f"{c.llc_mpki:>9.2f} {c.bandwidth_mbs:>8.0f}")

    # Fit the Section V-A predictor from the characterization itself.
    machine = MachineModel(SKYLAKE)
    predictor = LlcMissPredictor().fit(
        characterization_points(list(profiles.values()), machine)
    )
    print(f"\nLLC-bound data-size threshold: {predictor.threshold_bytes:,.0f} bytes")

    scheduler = PlatformScheduler(predictor)
    print(f"\n{'workload':<10s} {'placed on':<10s} {'speedup vs Broadwell':>20s}")
    for name, profile in profiles.items():
        result = run_chains(models[name], NUTS(max_tree_depth=6),
                            n_iterations=120, n_chains=4, seed=0)
        job = scheduler.schedule(profile, [c.total_work for c in result.chains])
        print(f"{name:<10s} {job.platform.codename:<10s} {job.speedup:>20.2f}")


if __name__ == "__main__":
    main()
