"""Engine registry — sampler construction from a (name, options) spec.

The CLI, the serving layer, and the worker processes all need to build the
same sampler from a plain-data description (a job spec must survive a trip
through JSON and a process boundary). This registry is the single mapping
from engine names to sampler classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.inference.hmc import HMC
from repro.inference.metropolis import MetropolisHastings
from repro.inference.nuts import NUTS
from repro.inference.slice_sampler import SliceSampler

_ENGINES = {
    "nuts": NUTS,
    "hmc": HMC,
    "mh": MetropolisHastings,
    "slice": SliceSampler,
}

#: Default construction options per engine, matching the CLI's historical
#: choices (a depth-6 NUTS and a 16-step HMC sample BayesSuite briskly).
DEFAULT_ENGINE_OPTIONS: Dict[str, Dict[str, object]] = {
    "nuts": {"max_tree_depth": 6},
    "hmc": {"n_leapfrog": 16},
    "mh": {},
    "slice": {},
}


def engine_names() -> List[str]:
    return list(_ENGINES)


def build_engine(name: str, options: Optional[Dict[str, object]] = None):
    """Instantiate the sampler ``name`` with ``options`` over its defaults."""
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: {', '.join(_ENGINES)}"
        ) from None
    merged = dict(DEFAULT_ENGINE_OPTIONS.get(name, {}))
    merged.update(options or {})
    return cls(**merged)
