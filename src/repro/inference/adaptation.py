"""Warmup adaptation: dual-averaging step size and diagonal mass matrix.

Implements the Nesterov dual-averaging scheme of Hoffman & Gelman (2014,
Section 3.2) used by Stan, and an online Welford estimator for the diagonal
of the mass matrix (inverse metric).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DualAveraging:
    """Adapt log step size so average acceptance approaches ``target``.

    Attributes follow the paper's notation: ``gamma`` regularization scale,
    ``t0`` iteration offset, ``kappa`` decay exponent; ``mu`` is the shrink
    target, set to log(10 * initial step size).
    """

    initial_step_size: float
    target: float = 0.8
    gamma: float = 0.05
    t0: float = 10.0
    kappa: float = 0.75

    def __post_init__(self) -> None:
        self.mu = float(np.log(10.0 * self.initial_step_size))
        self.log_step = float(np.log(self.initial_step_size))
        self.log_step_bar = 0.0
        self.h_bar = 0.0
        self.count = 0

    def update(self, accept_prob: float) -> float:
        """Feed one iteration's acceptance statistic; returns new step size."""
        self.count += 1
        m = self.count
        eta = 1.0 / (m + self.t0)
        self.h_bar = (1.0 - eta) * self.h_bar + eta * (self.target - accept_prob)
        self.log_step = self.mu - np.sqrt(m) / self.gamma * self.h_bar
        weight = m ** (-self.kappa)
        self.log_step_bar = weight * self.log_step + (1.0 - weight) * self.log_step_bar
        return float(np.exp(self.log_step))

    @property
    def step_size(self) -> float:
        """Current (noisy) step size used while still adapting."""
        return float(np.exp(self.log_step))

    @property
    def adapted_step_size(self) -> float:
        """Smoothed step size to freeze after warmup."""
        return float(np.exp(self.log_step_bar))

    def state_dict(self) -> dict:
        """Plain-data snapshot for deterministic chain resume."""
        return {
            "initial_step_size": self.initial_step_size,
            "target": self.target,
            "gamma": self.gamma,
            "t0": self.t0,
            "kappa": self.kappa,
            "mu": self.mu,
            "log_step": self.log_step,
            "log_step_bar": self.log_step_bar,
            "h_bar": self.h_bar,
            "count": self.count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DualAveraging":
        adapter = cls(
            float(state["initial_step_size"]), target=float(state["target"]),
            gamma=float(state["gamma"]), t0=float(state["t0"]),
            kappa=float(state["kappa"]),
        )
        adapter.mu = float(state["mu"])
        adapter.log_step = float(state["log_step"])
        adapter.log_step_bar = float(state["log_step_bar"])
        adapter.h_bar = float(state["h_bar"])
        adapter.count = int(state["count"])
        return adapter


class WelfordVariance:
    """Online mean/variance estimator for diagonal mass adaptation."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.count = 0
        self.mean = np.zeros(dim)
        self.m2 = np.zeros(dim)

    def update(self, x: np.ndarray) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def variance(self, regularize: bool = True) -> np.ndarray:
        """Sample variance, optionally shrunk toward 1 as Stan does."""
        if self.count < 2:
            return np.ones(self.dim)
        raw = self.m2 / (self.count - 1)
        if not regularize:
            return raw
        n = self.count
        # Stan's regularization: shrink toward unit metric with weight 5/(n+5).
        return (n / (n + 5.0)) * raw + 1e-3 * (5.0 / (n + 5.0))

    def reset(self) -> None:
        self.count = 0
        self.mean[:] = 0.0
        self.m2[:] = 0.0

    def state_dict(self) -> dict:
        """Plain-data snapshot for deterministic chain resume."""
        return {
            "dim": self.dim,
            "count": self.count,
            "mean": self.mean.copy(),
            "m2": self.m2.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "WelfordVariance":
        welford = cls(int(state["dim"]))
        welford.count = int(state["count"])
        welford.mean = np.array(state["mean"], dtype=float)
        welford.m2 = np.array(state["m2"], dtype=float)
        return welford


def find_reasonable_step_size_steps(x0: np.ndarray, rng: np.random.Generator,
                                    inv_mass: np.ndarray):
    """Step-generator form of :func:`find_reasonable_step_size`.

    Yields each position whose gradient it needs (the probe point and one
    leapfrog step per doubling/halving) and receives ``(logp, grad)`` via
    ``send``; see :mod:`repro.inference.stepper`. Consumes the RNG stream
    identically to the classic function, which is now a thin driver over
    this generator.
    """
    from repro.inference.hmc import kinetic_energy, leapfrog_steps

    step = 1.0
    logp0, grad0 = yield x0
    momentum = rng.normal(size=x0.shape) / np.sqrt(inv_mass)
    joint0 = logp0 - kinetic_energy(momentum, inv_mass)

    x1, p1, logp1, grad1, _ = yield from leapfrog_steps(
        x0, momentum, grad0, step, inv_mass
    )
    joint1 = logp1 - kinetic_energy(p1, inv_mass)
    if not np.isfinite(joint1):
        joint1 = -np.inf
    direction = 1.0 if (joint1 - joint0) > np.log(0.5) else -1.0

    for _ in range(50):
        step *= 2.0 ** direction
        x1, p1, logp1, grad1, _ = yield from leapfrog_steps(
            x0, momentum, grad0, step, inv_mass
        )
        joint1 = logp1 - kinetic_energy(p1, inv_mass)
        if not np.isfinite(joint1):
            joint1 = -np.inf
        if direction * (joint1 - joint0) <= direction * np.log(0.5):
            break
    return float(np.clip(step, 1e-8, 1e3))


def find_reasonable_step_size(logp_and_grad, x0: np.ndarray, rng: np.random.Generator,
                              inv_mass: np.ndarray) -> float:
    """Heuristic initial step size (Hoffman & Gelman, Algorithm 4).

    Doubles/halves the step until one leapfrog step's acceptance crosses 0.5.
    """
    from repro.inference.stepper import drive_steps

    return drive_steps(
        find_reasonable_step_size_steps(x0, rng, inv_mass), logp_and_grad
    )
