"""``votes`` — forecasting presidential vote shares with Gaussian processes.

A hierarchical GP over election years: every state's vote-share series is a
draw from a zero-mean GP (shared amplitude/lengthscale/noise hyperparameters)
around a state-specific mean. The marginal-likelihood formulation keeps the
sampling space small while the per-iteration work is dense linear algebra —
the high-IPC, compute-dense profile the paper reports for this workload.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tape import Var
from repro.models import BayesianModel, ParameterSpec
from repro.models import distributions as dist
from repro.models.transforms import Positive
from repro.suite.data import make_votes
from repro.suite.gp import rbf_kernel, squared_distance_matrix


class Votes(BayesianModel):
    name = "votes"
    model_family = "Hierarchical Gaussian Processes"
    application = "Forecasting presidential votes"
    reference = "StanCon 2017; historical (1976-2016) presidential votes"
    default_iterations = 1500
    default_warmup = 500
    default_chains = 4

    def __init__(self, scale: float = 1.0, seed: int = 105) -> None:
        super().__init__()
        data = make_votes(scale=scale, seed=seed)
        self.truth = data.pop("truth")
        self.add_data(**data)
        self.n_states = self.data("shares").shape[0]
        self._sq_dist = squared_distance_matrix(self.data("x"))

    @property
    def params(self):
        return [
            ParameterSpec("amplitude", 1, transform=Positive(), init=0.1),
            ParameterSpec("lengthscale", 1, transform=Positive(), init=1.0),
            ParameterSpec("noise", 1, transform=Positive(), init=0.05),
            ParameterSpec("state_mean", self.n_states, init=0.5),
        ]

    def log_joint(self, p: Dict[str, Var]) -> Var:
        shares = self.data("shares")
        cov = rbf_kernel(self._sq_dist, p["amplitude"], p["lengthscale"], p["noise"])
        logdet = ops.logdet_spd(cov)
        n_elections = shares.shape[1]
        log_2pi = float(np.log(2.0 * np.pi))

        total = ops.constant(0.0)
        for s in range(self.n_states):
            resid = ops.constant(shares[s]) - p["state_mean"][s]
            alpha = ops.solve_spd(cov, resid)
            quad = ops.dot(resid, alpha)
            total = total + (quad + logdet + n_elections * log_2pi) * -0.5

        return (
            total
            + dist.normal_lpdf(p["state_mean"], 0.5, 0.2)
            + dist.half_normal_lpdf(p["amplitude"], 0.2)
            + dist.lognormal_lpdf(p["lengthscale"], 0.0, 1.0)
            + dist.half_normal_lpdf(p["noise"], 0.1)
        )
