"""Architectural simulation substrate.

The paper characterizes BayesSuite with hardware performance counters on two
Intel machines (Table II). This package is the reproduction's stand-in for
that testbed:

* :mod:`repro.arch.platforms` — the Table II machine specifications;
* :mod:`repro.arch.cache` — a set-associative LRU cache simulator;
* :mod:`repro.arch.trace` — synthetic chain-interleaved access traces that
  drive the cache simulator and validate the analytical occupancy model;
* :mod:`repro.arch.profile` — extraction of *measured* workload features
  (modeled data bytes, autodiff tape size, gradient evaluations per
  iteration, code footprint);
* :mod:`repro.arch.machine` — the analytical multicore performance model
  mapping (workload profile, platform, cores, chains) to IPC, MPKI,
  bandwidth and runtime;
* :mod:`repro.arch.energy` — package power and energy.

The mechanisms the machine model encodes are exactly the ones the paper
identifies: per-chain working sets contend for a shared LLC, miss rates rise
once aggregate occupancy exceeds LLC capacity, bandwidth is proportional to
LLC misses, and compute-bound workloads scale with core count and frequency.
"""

from repro.arch.platforms import Platform, SKYLAKE, BROADWELL, PLATFORMS
from repro.arch.cache import SetAssociativeCache
from repro.arch.profile import WorkloadProfile, profile_workload
from repro.arch.machine import MachineModel, SimulatedCounters
from repro.arch.energy import EnergyModel
from repro.arch.parallelism import GraphParallelism, analyze_graph, layer_schedule
from repro.arch.accelerator import (
    AcceleratorConfig,
    AcceleratorModel,
    AcceleratorProjection,
)

__all__ = [
    "GraphParallelism",
    "analyze_graph",
    "layer_schedule",
    "AcceleratorConfig",
    "AcceleratorModel",
    "AcceleratorProjection",
    "Platform",
    "SKYLAKE",
    "BROADWELL",
    "PLATFORMS",
    "SetAssociativeCache",
    "WorkloadProfile",
    "profile_workload",
    "MachineModel",
    "SimulatedCounters",
    "EnergyModel",
]
