"""The batched round loop: many suspended samplers, one evaluation per round.

:class:`BatchedChainDriver` holds one suspended step generator per chain
(see :mod:`repro.inference.stepper`), collects every active chain's pending
position each round, answers them all with a single
:meth:`~repro.batch.engine.BatchedEvaluator.evaluate` call, and resumes
each generator with its own lane's result. Because each generator contains
the complete sampler loop (adaptation, RNG consumption, hooks, state
capture) and receives exactly the numbers the solo evaluator would have
produced, every chain's draws and logps are bit-identical to running the
chains one at a time — the round loop only changes *when* evaluations
happen, never what they return.

Idle lanes (chains finished, or width > active chains) are filled with
speculative prefetches from the :class:`~repro.batch.prefetch
.SpeculationPool` once the evaluator is calibration-``stable``; validated
hits answer a chain's next request without a round trip.

:func:`run_chains_batched` is the batched counterpart of
:func:`repro.inference.run_chains` and returns the same
:class:`~repro.inference.results.SamplingResult`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.batch.engine import BatchedEvaluator
from repro.batch.lanes import LaneScheduler
from repro.batch.prefetch import SpeculationPool
from repro.inference.stepper import EvalRequest

__all__ = ["BatchedChainDriver", "run_chains_batched"]


class _Chain:
    __slots__ = ("key", "gen", "rng", "lane", "request")

    def __init__(self, key, gen, rng):
        self.key = key
        self.gen = gen
        self.rng = rng
        self.lane: Optional[int] = None
        self.request: Optional[np.ndarray] = None


class BatchedChainDriver:
    """Drive step generators in lockstep rounds over a batched evaluator."""

    def __init__(
        self,
        evaluator: BatchedEvaluator,
        *,
        speculate: bool = True,
        registry=None,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.evaluator = evaluator
        self.scheduler = LaneScheduler(evaluator.width)
        self.pool = SpeculationPool()
        self.speculate = speculate
        self.results: Dict[object, object] = {}
        self._registry = registry
        self._labels = labels or {}
        self._chains_done = 0

    def submit(self, key, gen, rng: np.random.Generator) -> None:
        """Add a chain: its step generator and its (live) RNG stream.

        ``rng`` must be the same Generator object the step generator draws
        from — the speculation validity rule reads its state at request
        time. Chains may be submitted before ``run`` or while it runs
        (from an iteration hook), and are admitted as lanes free up.
        """
        self.scheduler.submit(_Chain(key, gen, rng))

    def run(self) -> Dict[object, object]:
        """Drive all submitted chains to completion; key → chain result."""
        scheduler = self.scheduler
        pool = self.pool
        evaluator = self.evaluator
        while True:
            for index, chain in scheduler.admit():
                chain.lane = index
                self._advance(chain, None)
            active = [
                (index, chain)
                for index, chain in scheduler.active()
            ]
            if not active:
                if scheduler.n_queued:
                    # A freshly admitted chain retired during priming;
                    # there may be lanes free for the rest of the queue.
                    continue
                break
            requests = {index: chain.request for index, chain in active}
            fills = []
            if self.speculate and evaluator.stable:
                free = scheduler.free_lanes()
                for lane, (key, plan) in zip(free, pool.claim(len(free))):
                    requests[lane] = plan.x
                    fills.append((lane, key, plan))
            results = evaluator.evaluate(requests)
            scheduler.note_round(len(active))
            for lane, key, plan in fills:
                value, grad = results[lane]
                pool.fulfil(key, plan, value, grad)
            for index, chain in active:
                self._advance(chain, results[index])
        self._flush_telemetry()
        return self.results

    def _advance(self, chain: _Chain, result) -> None:
        """Feed one result in; drain hits; leave the chain with a request.

        ``result`` is None only when priming a fresh generator.
        """
        gen = chain.gen
        pool = self.pool
        while True:
            try:
                request = gen.send(result)
            except StopIteration as stop:
                self.results[chain.key] = stop.value
                if chain.lane is not None:
                    self.scheduler.retire(chain.lane)
                    chain.lane = None
                pool.forget(chain.key)
                self._chains_done += 1
                return
            if type(request) is EvalRequest:
                x, plan = request.x, request.plan
            else:
                x, plan = request, None
            hit = pool.consume(chain.key, x, chain.rng)
            # An unevaluated plan predicted this very request; it is stale
            # now whatever happens next.
            pool.drop_pending(chain.key)
            if plan is not None:
                pool.register(chain.key, plan)
            if hit is None:
                chain.request = x
                return
            result = hit

    def _flush_telemetry(self) -> None:
        if self._registry is None:
            return
        from repro.telemetry import instrument as ins

        labels = self._labels
        registry = self._registry
        pool = self.pool
        registry.gauge(ins.BATCH_WIDTH, labels).set(self.scheduler.width)
        if pool.filled:
            registry.counter(ins.BATCH_SPEC_FILLED, labels).inc(pool.filled)
        if pool.hits:
            registry.counter(ins.BATCH_SPEC_HITS, labels).inc(pool.hits)
        if pool.misses:
            registry.counter(ins.BATCH_SPEC_MISSES, labels).inc(pool.misses)
        if self._chains_done:
            registry.counter(ins.BATCH_CHAINS, labels).inc(self._chains_done)
        # Pool counts reset so a reused driver never double-flushes.
        pool.filled = pool.hits = pool.misses = 0
        self._chains_done = 0

    def snapshot(self) -> Dict[str, object]:
        """Plain-data stats (occupancy, speculation, evaluator counters)."""
        stats = dict(self.evaluator.stats)
        stats.update(self.scheduler.snapshot())
        stats.update(self.pool.snapshot())
        engine = self.evaluator.engine
        if engine is not None:
            stats["demotions"] = engine.demotions
            stats["vector_instructions"] = engine.n_vector
            stats["lane_instructions"] = engine.n_lane
        return stats


def run_chains_batched(
    model,
    sampler,
    n_iterations: int,
    n_chains: Optional[int] = None,
    seed: int = 0,
    n_warmup: Optional[int] = None,
    initial_jitter: float = 1.0,
    iteration_hook=None,
    *,
    width: Optional[int] = None,
    speculate: bool = True,
    registry=None,
):
    """Batched counterpart of :func:`repro.inference.run_chains`.

    Runs ``n_chains`` chains through one :class:`BatchedChainDriver`
    instead of sequentially; per-chain RNG streams and initial positions
    come from the same :func:`repro.inference.chain.chain_start`, so the
    returned :class:`~repro.inference.results.SamplingResult` is
    bit-identical to the sequential solo-tape run.

    ``width`` defaults to ``n_chains``; a larger width leaves idle lanes
    for speculative prefetch from the start.
    """
    from repro import telemetry
    from repro.inference.chain import DEFAULT_CHAINS, chain_start
    from repro.inference.results import SamplingResult, compose_hooks

    if n_chains is None:
        n_chains = DEFAULT_CHAINS
    if n_iterations < 2:
        raise ValueError("n_iterations must be at least 2")
    if n_chains < 1:
        raise ValueError("n_chains must be at least 1")
    if not hasattr(sampler, "sample_steps"):
        raise TypeError(
            f"{type(sampler).__name__} does not expose a step generator "
            "(sample_steps); batched replay needs gradient-based engines "
            "(HMC, NUTS)"
        )

    engine_name = type(sampler).__name__.lower()
    labels = {"workload": model.name, "engine": engine_name}
    if registry is None and telemetry.enabled():
        registry = telemetry.get_registry()

    tape_before = None
    if telemetry.enabled():
        iteration_hook = compose_hooks(
            telemetry.sampler_hook(model.name, sampler), iteration_hook
        )
        stats = getattr(model, "tape_stats", lambda: None)()
        tape_before = dict(stats) if stats else {}

    evaluator = BatchedEvaluator(
        model, width or n_chains, registry=registry, labels=labels
    )
    driver = BatchedChainDriver(
        evaluator, speculate=speculate, registry=registry, labels=labels
    )
    for chain_index in range(n_chains):
        rng, x0 = chain_start(model, seed, chain_index, initial_jitter)
        gen = sampler.sample_steps(
            x0, n_iterations, rng, n_warmup=n_warmup,
            iteration_hook=iteration_hook, speculate=speculate,
        )
        driver.submit(chain_index, gen, rng)
    results = driver.run()

    if tape_before is not None:
        stats = getattr(model, "tape_stats", lambda: None)()
        if stats:
            deltas = {
                f"tape_{key}": value - tape_before.get(key, 0)
                for key, value in stats.items()
            }
            telemetry.observe_tape_stats(
                telemetry.get_registry(), deltas,
                labels={"workload": model.name},
            )

    return SamplingResult(
        model_name=model.name,
        chains=[results[c] for c in range(n_chains)],
        param_names=model.flat_param_names(),
    )
