"""Durable submit queue with crash recovery for the CLI service.

``repro submit`` and ``repro serve`` run in different processes at different
times, so the hand-off lives on disk: one append-only JSONL event log per
queue directory. Each line is an operation::

    {"op": "submit",   "id": "<entry>", "spec": {...}}
    {"op": "running",  "id": "<entry>"}
    {"op": "finished", "id": "<entry>", "state": "done"}

Replaying the log classifies every entry: *finished* entries are dropped,
*submitted-never-started* entries are pending, and *running-but-never-
finished* entries are **orphans** — a previous ``repro serve`` process died
mid-job. Because execution is deterministic and results are keyed by spec,
re-running an orphan is always safe: it either re-computes the identical
result or is answered from the store if the crash happened after the result
landed.

Legacy queues (bare spec dicts, one per line, from earlier releases) load
as pending entries.

The log is append-only while a server drains, so a crash at any point
leaves a replayable record; ``truncate`` clears it once every entry has
reached a terminal state. A long-lived gateway never reaches that
all-terminal moment, so ``load()`` additionally **compacts**: when the
replayed records outnumber the live (pending + orphaned) entries by more
than :data:`COMPACT_RATIO`, the log is atomically rewritten to just the
live entries — finished history is dropped, bounding the file for
deployments that submit and finish work forever.
"""

from __future__ import annotations

import json
import os
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.resilience.errors import MutationFencedError
from repro.serve.job import JobSpec

#: ``load()`` compacts once replayed records exceed this many times the
#: live entries (4× ≈ the submit/running/finished triple plus slack, so a
#: healthy in-flight queue is never rewritten on every restart).
COMPACT_RATIO = 4


@dataclass(frozen=True)
class QueueEntry:
    """One recovered submission."""

    entry_id: str
    spec: JobSpec
    #: True when a previous server started this entry but never finished it.
    orphaned: bool = False


@dataclass
class QueueRecovery:
    """What replaying the log found."""

    #: Submitted but never started, in submission order.
    pending: List[QueueEntry] = field(default_factory=list)
    #: Started by a server that never marked them finished (crash/kill).
    orphaned: List[QueueEntry] = field(default_factory=list)

    @property
    def entries(self) -> List[QueueEntry]:
        """Everything that still needs running: orphans first (they were
        admitted earlier), then pending submissions."""
        return self.orphaned + self.pending


class FileJobQueue:
    """Append-only JSONL submit queue shared by ``submit`` and ``serve``.

    ``mutation_guard`` fences the *consumer-side* operations — running/
    finished marks, compaction rewrites, truncation — for queues shared by
    several processes: the guard (typically :meth:`repro.fleet.lease.
    ShardLease.check`) is called immediately before each such write and
    vetoes it by raising :class:`~repro.resilience.errors.
    MutationFencedError`. Producer-side ``submit`` appends are deliberately
    unguarded: any process may hand work to a shard; only draining it is
    exclusive.
    """

    def __init__(
        self,
        path,
        mutation_guard: Optional[Callable[[], None]] = None,
    ) -> None:
        self.path = Path(path)
        self.mutation_guard = mutation_guard

    def _guard(self) -> None:
        if self.mutation_guard is not None:
            self.mutation_guard()

    def _append(self, record: Dict) -> None:
        from repro.resilience import chaos

        chaos.check_write("filequeue")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")

    @staticmethod
    def _count_torn_line() -> None:
        """Count a skipped log line in the process-global registry (the
        queue has no injected registry — it predates telemetry — and a
        recovery anomaly must be visible wherever metrics are scraped)."""
        from repro import telemetry
        from repro.telemetry.instrument import (
            RESILIENCE_QUEUE_TORN_LINES,
            help_for,
        )

        telemetry.get_registry().counter(
            RESILIENCE_QUEUE_TORN_LINES,
            help=help_for(RESILIENCE_QUEUE_TORN_LINES),
        ).inc()

    # -- producer side (repro submit) ------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Record one submission; returns its entry id."""
        entry_id = uuid.uuid4().hex[:12]
        self._append({"op": "submit", "id": entry_id, "spec": spec.to_dict()})
        return entry_id

    # -- consumer side (repro serve) -------------------------------------------

    def mark_running(self, entry_id: str) -> None:
        self._guard()
        self._append({"op": "running", "id": entry_id})

    def mark_finished(self, entry_id: str, state: str = "done") -> None:
        self._guard()
        self._append({"op": "finished", "id": entry_id, "state": state})

    def load(self, compact: bool = True) -> QueueRecovery:
        """Replay the log into pending and orphaned entries.

        Unparseable lines (torn writes from a crash mid-append) and specs
        that no longer validate are skipped with a warning rather than
        blocking the rest of the queue. With ``compact=True`` (the
        default), a log whose replayed records exceed
        :data:`COMPACT_RATIO` times the live entries is rewritten in place
        to just those entries, keeping long-lived deployments bounded.
        """
        recovery = QueueRecovery()
        if not self.path.exists():
            return recovery
        n_records = 0
        specs: Dict[str, JobSpec] = {}
        order: List[str] = []
        started: Dict[str, bool] = {}
        finished: Dict[str, bool] = {}
        # Read bytes and decode per line: a crash (or ENOSPC) mid-append can
        # tear the final line anywhere, including inside a multi-byte UTF-8
        # sequence — read_text() would then raise UnicodeDecodeError and
        # take the *whole* queue down with it. Decoding line-by-line
        # quarantines the damage to the torn line.
        for lineno, raw_line in enumerate(
            self.path.read_bytes().split(b"\n"), 1
        ):
            if not raw_line.strip():
                continue
            try:
                line = raw_line.decode("utf-8")
            except UnicodeDecodeError as exc:
                warnings.warn(
                    f"{self.path}:{lineno}: skipping torn (undecodable) "
                    f"queue line ({exc})",
                    RuntimeWarning,
                )
                self._count_torn_line()
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                warnings.warn(
                    f"{self.path}:{lineno}: skipping unparseable queue "
                    f"line ({exc})",
                    RuntimeWarning,
                )
                self._count_torn_line()
                continue
            n_records += 1
            try:
                if "op" not in record:
                    # Legacy format: the line *is* the spec.
                    entry_id = f"legacy-{lineno}"
                    specs[entry_id] = JobSpec.from_dict(record)
                    order.append(entry_id)
                elif record["op"] == "submit":
                    entry_id = record["id"]
                    specs[entry_id] = JobSpec.from_dict(record["spec"])
                    order.append(entry_id)
                elif record["op"] == "running":
                    started[record["id"]] = True
                elif record["op"] == "finished":
                    finished[record["id"]] = True
            except (KeyError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"{self.path}:{lineno}: skipping invalid queue "
                    f"record ({exc})",
                    RuntimeWarning,
                )
        for entry_id in order:
            if finished.get(entry_id):
                continue
            entry = QueueEntry(
                entry_id=entry_id,
                spec=specs[entry_id],
                orphaned=bool(started.get(entry_id)),
            )
            (recovery.orphaned if entry.orphaned else recovery.pending).append(
                entry
            )
        live = len(recovery.pending) + len(recovery.orphaned)
        if compact and n_records > COMPACT_RATIO * max(live, 1):
            try:
                self._rewrite(recovery)
            except MutationFencedError as exc:
                # Opportunistic compaction is a tidy-up, not a correctness
                # step: a reader that does not hold the shard's lease (a
                # status command, a stale ex-holder) must never rewrite a
                # log another process is actively draining. Explicit
                # :meth:`compact` calls propagate the veto instead.
                warnings.warn(
                    f"{self.path}: skipping compaction ({exc})",
                    RuntimeWarning,
                )
        return recovery

    def compact(self) -> QueueRecovery:
        """Rewrite the log to just its live entries, unconditionally.

        Lease-guarded: raises :class:`MutationFencedError` when this
        queue's ``mutation_guard`` vetoes the rewrite.
        """
        recovery = self.load(compact=False)
        self._rewrite(recovery)
        return recovery

    def _rewrite(self, recovery: QueueRecovery) -> None:
        """Atomically replace the log with the recovery's live entries.

        Orphans keep their ``running`` marker so a subsequent replay still
        classifies them as orphaned; everything finished is dropped.
        """
        self._guard()
        lines = []
        for entry in recovery.entries:  # orphans first: admitted earlier
            lines.append(json.dumps(
                {"op": "submit", "id": entry.entry_id, "spec": entry.spec.to_dict()}
            ))
        for entry in recovery.orphaned:
            lines.append(json.dumps({"op": "running", "id": entry.entry_id}))
        from repro.resilience import chaos

        chaos.check_write("filequeue")
        content = "".join(line + "\n" for line in lines)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(content)
        os.replace(tmp, self.path)

    def truncate(self) -> None:
        """Clear the log (every entry has reached a terminal state)."""
        self._guard()
        if self.path.exists():
            self.path.write_text("")
