"""Tests for the Markdown report generator (structure only — the content
tables are exercised by a tiny-budget runner on two cheap workloads via the
underlying pipeline tests)."""

import numpy as np
import pytest

from repro.report import _platform_table, _table, _workload_table


class TestTableRendering:
    def test_table_shape(self):
        text = _table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_workload_table_lists_all_ten(self):
        text = _workload_table()
        for name in ("12cities", "tickets", "survival"):
            assert name in text
        assert text.count("\n") == 11  # header + separator + 10 rows

    def test_platform_table(self):
        text = _platform_table()
        assert "i7-6700K" in text
        assert "40 MB" in text


class TestCliParser:
    def test_report_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report"])
        assert args.output == "report.md"
        assert args.budget_fraction == pytest.approx(0.12)
