"""HTTP routing and JSON views for the gateway.

The handler is deliberately thin: parse → authenticate → rate-limit →
dispatch to a view function → serialize. Views are pure functions over
:class:`~repro.serve.job.Job` so they are unit-testable without a socket.

Routes (all JSON unless noted; see ``docs/gateway.md``):

============================  =================================================
``POST /v1/jobs``             submit a :class:`JobSpec`; 202 with the job view,
                              400 on an invalid spec, 429 on ``AdmissionError``
``GET /v1/jobs``              every job the gateway has seen (newest last)
``GET /v1/jobs/{id}``         one job: state, attempts, placement, R-hat so far
``GET /v1/jobs/{id}/result``  posterior summary (+ draws with
                              ``?include_draws=1``); 409 until terminal
``GET /v1/jobs/{id}/events``  Server-Sent Events stream (``text/event-stream``)
``GET /metrics``              Prometheus text exposition of the live registry
``GET /healthz``              liveness (no auth, no rate limit)
============================  =================================================

Every request is counted in :data:`~repro.telemetry.instrument.
GATEWAY_REQUESTS` (labels: method, route template, status), timed into
:data:`~repro.telemetry.instrument.GATEWAY_REQUEST_SECONDS`, and traced as
a ``gateway.request`` span. Route labels use the *template* (``/v1/jobs/
{id}``), never the raw path, so metric cardinality stays bounded.
"""

from __future__ import annotations

import json
import queue as queue_module
import time
from http.server import BaseHTTPRequestHandler
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.amortize.policy import DEFAULT_MODE, MODES
from repro.diagnostics.summary import summarize
from repro.gateway.sse import KEEPALIVE, JobEvent, json_safe
from repro.fleet.member import WrongReplicaError
from repro.resilience import LoadSheddedError, chaos
from repro.serve.job import Job, JobSpec, JobState
from repro.serve.queue import AdmissionError
from repro.telemetry.instrument import (
    GATEWAY_REQUEST_SECONDS,
    GATEWAY_REQUESTS,
    GATEWAY_SSE_EVENTS,
    GATEWAY_UNAUTHORIZED,
    REQUEST_SECONDS_BUCKETS,
    RESILIENCE_CHAOS_INJECTED,
    RESILIENCE_SSE_DROPPED,
    help_for,
)

#: Submission bodies above this are rejected outright (a JobSpec is a few
#: hundred bytes; anything larger is abuse or a client bug).
MAX_BODY_BYTES = 64 * 1024


class GatewayDrainingError(AdmissionError):
    """Submission refused because the gateway is draining for shutdown."""


class ApiError(Exception):
    """A structured HTTP error a view raises and the handler serializes.

    The response body is ``{"error": message}`` plus, when set, a machine-
    readable ``"code"`` (a stable slug clients can branch on, e.g.
    ``unknown_field`` / ``invalid_mode``) and a ``"detail"`` object with
    the specifics (the offending fields, the accepted values).
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        code: Optional[str] = None,
        detail: Optional[Dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.code = code
        self.detail = detail

    def body(self) -> Dict:
        payload: Dict = {"error": self.message}
        if self.code is not None:
            payload["code"] = self.code
        if self.detail is not None:
            payload["detail"] = self.detail
        return payload


# -- JSON views ----------------------------------------------------------------


def placement_view(placement) -> Optional[Dict]:
    if placement is None:
        return None
    return {
        "platform": placement.platform,
        "predicted_llc_bound": bool(placement.predicted_llc_bound),
        "predicted_mpki": float(placement.predicted_mpki),
        "predictor_fitted": bool(placement.predictor_fitted),
    }


def elision_view(elision) -> Optional[Dict]:
    if elision is None:
        return None
    return {
        "elided": elision.elided,
        "budget_kept": int(elision.budget_kept),
        "converged_kept": (
            int(elision.converged_kept)
            if elision.converged_kept is not None else None
        ),
        "rhat_threshold": float(elision.rhat_threshold),
        "checkpoints": [int(k) for k in elision.checkpoints],
        "rhat_trace": [float(r) for r in elision.rhat_trace],
        "iterations_saved_fraction": float(elision.iterations_saved_fraction),
    }


def provenance_view(provenance) -> Optional[Dict]:
    """The provenance block: which tier produced the draws and why."""
    if provenance is None:
        return None
    return provenance.to_dict()


def job_view(job: Job, rhat_trace=None) -> Dict:
    """The status document for one job.

    ``rhat_trace`` is the broker's live (kept, rhat) list — during a run it
    is ahead of ``job.elision`` (which only exists after the attempt ends).
    """
    trace = rhat_trace or []
    return {
        "job_id": job.job_id,
        "key": job.key,
        "state": job.state.value,
        "terminal": job.state.terminal,
        "workload": job.spec.workload,
        "engine": job.spec.engine,
        "mode": job.spec.mode,
        "priority": job.spec.priority,
        "attempts": job.attempts,
        "deduped": job.deduped,
        "failure_kind": job.failure_kind,
        "error": job.error,
        "placement": placement_view(job.placement),
        "elision": elision_view(job.elision),
        "provenance": provenance_view(job.provenance),
        "rhat": (
            {"kept": trace[-1][0], "value": trace[-1][1]} if trace else None
        ),
        "rhat_trace": [
            {"kept": kept, "value": value} for kept, value in trace
        ],
        "spec": job.spec.to_dict(),
    }


def result_view(job: Job, include_draws: bool = False) -> Dict:
    """The result document: posterior summary, optionally the draws.

    Raises :class:`ApiError` 409 while the job is still in flight and for
    FAILED jobs (the status view carries the error detail).
    """
    if not job.state.terminal:
        raise ApiError(
            409, f"job {job.job_id} is {job.state.value}; result not ready"
        )
    if job.state is JobState.EXPIRED:
        # The gateway-timeout of the job world: the deadline passed before
        # any draws worth keeping existed. (A deadline hit *past* warmup
        # completes DONE with partial draws and degraded provenance, and is
        # served normally below.)
        raise ApiError(
            504,
            f"job {job.job_id} missed its deadline before producing draws",
            code="deadline_expired",
        )
    if job.result is None:
        raise ApiError(
            409, f"job {job.job_id} failed; no result (see the job status)"
        )
    result = job.result
    stacked = result.stacked()
    names = list(result.param_names) or None
    summary = [
        {
            "name": row.name,
            "mean": row.mean,
            "sd": row.sd,
            "q05": row.q05,
            "q50": row.q50,
            "q95": row.q95,
            "ess": row.ess,
            "rhat": row.rhat,
        }
        for row in summarize(stacked, names)
    ]
    view = {
        "job_id": job.job_id,
        "key": job.key,
        "state": job.state.value,
        "model": result.model_name,
        "param_names": list(result.param_names),
        "n_chains": result.n_chains,
        "n_kept": result.n_kept,
        "n_warmup": int(job.spec.resolved_warmup),
        "total_work": result.total_work,
        "divergences": result.divergences,
        "summary": summary,
        "elision": elision_view(job.elision),
        "placement": placement_view(job.placement),
        "provenance": provenance_view(job.provenance),
    }
    if include_draws:
        # (n_chains, n_kept, dim) kept draws as nested lists; the client
        # reassembles a numpy array. JSON floats round-trip exactly (repr
        # grammar), so a downloaded posterior is bit-identical.
        view["draws"] = stacked.tolist()
    return view


def parse_job_spec(payload) -> JobSpec:
    """A validated :class:`JobSpec` from a request body, or 400.

    Unknown top-level fields and unknown serving modes get their own error
    codes (``unknown_field`` / ``invalid_mode``) with the offending values
    and the accepted ones in ``detail`` — a misspelled field must never be
    silently dropped (it would change which result key the job dedups
    against), and a client probing for tiers the server predates deserves
    a machine-readable answer.
    """
    if not isinstance(payload, dict):
        raise ApiError(
            400, "request body must be a JSON object of JobSpec fields",
            code="invalid_body",
        )
    known = sorted(JobSpec.__dataclass_fields__)
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ApiError(
            400,
            f"unknown job spec field(s): {', '.join(unknown)}",
            code="unknown_field",
            detail={"fields": unknown, "known_fields": known},
        )
    mode = payload.get("mode", DEFAULT_MODE)
    if mode not in MODES:
        raise ApiError(
            400,
            f"unknown serving mode {mode!r}",
            code="invalid_mode",
            detail={"mode": mode, "modes": list(MODES)},
        )
    try:
        return JobSpec.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ApiError(400, f"invalid job spec: {exc}", code="invalid_spec")


def _truthy(values) -> bool:
    return bool(values) and values[-1].lower() in ("1", "true", "yes", "on")


# -- the request handler -------------------------------------------------------


class GatewayRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request; state lives on ``self.server.gateway``."""

    server_version = "repro-gateway/1.0"
    #: HTTP/1.0 keeps the SSE stream simple: no chunked framing, the end of
    #: the stream is the end of the connection.
    protocol_version = "HTTP/1.0"

    # -- plumbing --------------------------------------------------------------

    @property
    def gateway(self):
        return self.server.gateway

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are observable through telemetry, not stderr noise

    def _send_json(
        self,
        status: int,
        payload: Dict,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(json_safe(payload), sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after + 0.5))))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)
        self._status = status

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    # -- request entry points --------------------------------------------------

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def _handle(self, method: str) -> None:
        gateway = self.gateway
        registry = gateway.registry
        split = urlsplit(self.path)
        route, handler, needs_auth = self._route(method, split.path)
        self._status = 500
        started = time.monotonic()
        with gateway.tracer.span(
            "gateway.request", method=method, route=route
        ) as attrs:
            try:
                if handler is None:
                    raise ApiError(404, f"no route {method} {split.path}")
                self._maybe_inject_chaos(route)
                token = None
                if needs_auth and gateway.auth is not None:
                    token = gateway.auth.authenticate(
                        self.headers.get("Authorization")
                    )
                    if token is None:
                        registry.counter(
                            GATEWAY_UNAUTHORIZED,
                            help=help_for(GATEWAY_UNAUTHORIZED),
                        ).inc()
                        raise ApiError(401, "missing or invalid bearer token")
                if needs_auth and gateway.ratelimit is not None:
                    wait = gateway.ratelimit.check(token)
                    if wait is not None:
                        raise ApiError(
                            429, "rate limit exceeded", retry_after=wait
                        )
                handler(split)
            except ApiError as exc:
                self._send_json(
                    exc.status, exc.body(), retry_after=exc.retry_after
                )
            except (BrokenPipeError, ConnectionResetError):
                self._status = 499  # client went away mid-response
            except Exception as exc:  # a view bug must not kill the thread
                try:
                    self._send_json(500, {"error": f"internal error: {exc}"})
                except (BrokenPipeError, ConnectionResetError):
                    pass
            finally:
                attrs["status"] = str(self._status)
                registry.counter(
                    GATEWAY_REQUESTS,
                    {
                        "method": method,
                        "route": route,
                        "status": str(self._status),
                    },
                    help=help_for(GATEWAY_REQUESTS),
                ).inc()
                registry.histogram(
                    GATEWAY_REQUEST_SECONDS,
                    {"route": route},
                    buckets=REQUEST_SECONDS_BUCKETS,
                    help=help_for(GATEWAY_REQUEST_SECONDS),
                ).observe(time.monotonic() - started)

    def _route(self, method: str, path: str) -> Tuple[str, Optional[object], bool]:
        """(route template, bound handler or None, auth required)."""
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return "/healthz", self._get_healthz, False
        if path == "/metrics" and method == "GET":
            return "/metrics", self._get_metrics, False
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2:
                if method == "POST":
                    return "/v1/jobs", self._post_job, True
                if method == "GET":
                    return "/v1/jobs", self._get_jobs, True
            elif len(parts) == 3 and method == "GET":
                return "/v1/jobs/{id}", self._get_job, True
            elif len(parts) == 4 and method == "GET":
                if parts[3] == "result":
                    return "/v1/jobs/{id}/result", self._get_result, True
                if parts[3] == "events":
                    return "/v1/jobs/{id}/events", self._get_events, True
        return path, None, True

    # -- chaos injection -------------------------------------------------------

    def _count_chaos(self, kind: str) -> None:
        self.gateway.registry.counter(
            RESILIENCE_CHAOS_INJECTED,
            {"kind": kind},
            help=help_for(RESILIENCE_CHAOS_INJECTED),
        ).inc()

    def _maybe_inject_chaos(self, route: str) -> None:
        """Apply at most one scripted HTTP fault to this request.

        No-op unless a chaos plan is installed (``REPRO_CHAOS``). ``delay``
        stalls then proceeds; ``http_5xx`` becomes an injected 500;
        ``conn_drop`` closes the socket without a response (the client sees
        a reset, which its transient retry must absorb).
        """
        injector = chaos.active()
        if injector is None:
            return
        fault = injector.http_fault(route)
        if fault is None:
            return
        self._count_chaos(fault.kind)
        if fault.kind == "delay":
            time.sleep(fault.seconds)
        elif fault.kind == "http_5xx":
            raise ApiError(
                500, "injected chaos: server error", code="chaos_http_5xx"
            )
        elif fault.kind == "conn_drop":
            self.connection.close()
            raise BrokenPipeError("injected chaos: connection dropped")

    # -- route handlers --------------------------------------------------------

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(400, "request body required")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, f"body larger than {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"body is not valid JSON: {exc}")

    def _job_or_404(self, job_id: str) -> Job:
        job = self.gateway.job(job_id)
        if job is None:
            raise ApiError(404, f"no job {job_id!r}")
        return job

    def _post_job(self, split) -> None:
        spec = parse_job_spec(self._read_body())
        try:
            job = self.gateway.submit(spec)
        except GatewayDrainingError as exc:
            raise ApiError(503, str(exc), retry_after=5.0, code="draining")
        except WrongReplicaError as exc:
            # 421 Misdirected Request: the spec's shard is drained by
            # another replica. The detail names it; a fleet-aware client
            # resubmits there, a plain client surfaces the error.
            raise ApiError(
                421,
                str(exc),
                code="wrong_replica",
                detail={
                    "shard": exc.shard,
                    "owner": exc.owner,
                    "owner_url": exc.owner_url,
                },
            )
        except LoadSheddedError as exc:
            # Cost-aware shedding: the admission controller predicts this
            # job cannot be served in time (or the queue is overloaded).
            # 503 + Retry-After, unlike the 429 below, signals server
            # pressure rather than client misbehavior.
            raise ApiError(
                503,
                str(exc),
                retry_after=exc.retry_after,
                code="load_shed",
                detail={"reason": exc.reason},
            )
        except AdmissionError as exc:
            raise ApiError(429, str(exc), retry_after=1.0)
        except KeyError as exc:  # unknown workload
            raise ApiError(400, str(exc.args[0]) if exc.args else str(exc))
        view = job_view(job, self.gateway.events.rhat_trace(job.job_id))
        self._send_json(202, view)

    def _get_jobs(self, split) -> None:
        jobs = self.gateway.jobs()
        self._send_json(
            200,
            {
                "jobs": [
                    job_view(job, self.gateway.events.rhat_trace(job.job_id))
                    for job in jobs
                ]
            },
        )

    def _get_job(self, split) -> None:
        job_id = split.path.split("/")[3]
        job = self._job_or_404(job_id)
        self._send_json(200, job_view(job, self.gateway.events.rhat_trace(job_id)))

    def _get_result(self, split) -> None:
        job_id = split.path.split("/")[3]
        job = self._job_or_404(job_id)
        include_draws = _truthy(
            parse_qs(split.query).get("include_draws", [])
        )
        self._send_json(200, result_view(job, include_draws=include_draws))

    def _get_metrics(self, split) -> None:
        from repro.telemetry.exposition import render_prometheus

        text = render_prometheus(self.gateway.registry.snapshot())
        self._send_text(200, text, "text/plain; version=0.0.4")

    def _get_healthz(self, split) -> None:
        self._send_json(200, self.gateway.health())

    def _get_events(self, split) -> None:
        job_id = split.path.split("/")[3]
        self._job_or_404(job_id)
        gateway = self.gateway
        sub = gateway.events.subscribe(
            job_id, limit=gateway.sse_subscriber_limit
        )
        sse_counter = gateway.registry.counter(
            GATEWAY_SSE_EVENTS, help=help_for(GATEWAY_SSE_EVENTS)
        )
        injector = chaos.active()
        truncate = injector.sse_fault() if injector is not None else None
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        self._status = 200
        sent = 0
        try:
            while True:
                try:
                    event = sub.get(timeout=gateway.sse_keepalive)
                except queue_module.Empty:
                    self.wfile.write(KEEPALIVE)
                    self.wfile.flush()
                    continue
                if event is None:
                    break
                dropped = sub.take_dropped()
                if dropped:
                    # This connection fell behind its bounded mailbox and
                    # lost the oldest events; tell it how many, so a client
                    # knows to re-fetch state instead of trusting the gap.
                    gateway.registry.counter(
                        RESILIENCE_SSE_DROPPED,
                        help=help_for(RESILIENCE_SSE_DROPPED),
                    ).inc(dropped)
                    self.wfile.write(
                        JobEvent(
                            event="dropped",
                            data={"job_id": job_id, "dropped": dropped},
                        ).render()
                    )
                self.wfile.write(event.render())
                self.wfile.flush()
                sse_counter.inc()
                sent += 1
                if truncate is not None and sent >= truncate.after_events:
                    # Injected half-open stream: stop mid-flight with no
                    # terminal event, as a dying proxy would.
                    self._count_chaos(truncate.kind)
                    self.connection.close()
                    break
        finally:
            gateway.events.unsubscribe(job_id, sub)
