"""Computation elision via runtime convergence detection (Section VI-A).

The number of sampling iterations is a user guess, and the paper finds that
BayesSuite's user settings overshoot convergence by ~70% on average. The
mechanism here periodically computes the Gelman-Rubin diagnostic over the
draws so far (second half only, after Brooks et al.) and stops the job the
first time every parameter's R-hat drops below 1.1.

Two forms are provided:

* :class:`OnlineRhat` — the incremental statistic a framework would embed in
  its sampling loop (the paper measures its overhead at 0.06 s for the worst
  case; the overhead bench reproduces that measurement);
* :class:`ConvergenceDetector` — post-hoc detection over a recorded
  multi-chain run, which is how the figure benches replay elision decisions
  without re-sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.diagnostics.ess import min_ess
from repro.diagnostics.kl import gaussian_kl
from repro.diagnostics.rhat import max_rhat
from repro.inference.results import SamplingResult

#: Convergence level suggested by Brooks et al. and used by the paper.
RHAT_THRESHOLD = 1.1


class OnlineRhat:
    """Incremental max-R-hat over growing multi-chain draws.

    Chains feed draws with :meth:`update`; :meth:`rhat` evaluates the
    diagnostic on the second half of what has been seen so far. The
    evaluation cost is what the paper's overhead analysis measures.
    """

    def __init__(self, n_chains: int, dim: int) -> None:
        if n_chains < 2:
            raise ValueError("R-hat requires at least 2 chains")
        self.n_chains = n_chains
        self.dim = dim
        self._draws: List[List[np.ndarray]] = [[] for _ in range(n_chains)]

    def update(self, chain: int, draw: np.ndarray) -> None:
        self._draws[chain].append(np.asarray(draw, dtype=float))

    def reset_chain(self, chain: int) -> None:
        """Drop one chain's draws (it is about to be re-fed from scratch)."""
        self._draws[chain] = []

    @property
    def n_draws(self) -> int:
        return min(len(d) for d in self._draws)

    def rhat(self) -> float:
        """Max split-style R-hat on the second half of current draws."""
        return self.rhat_at(self.n_draws)

    def rhat_at(self, stop: int) -> float:
        """Max R-hat over the second half of the first ``stop`` draws.

        Evaluating at a fixed horizon (rather than whatever extra draws fast
        chains have raced ahead to) is what lets the serving layer's online
        checks reproduce the post-hoc :class:`ConvergenceDetector` decision
        at the same checkpoint.
        """
        if stop < 4 or self.n_draws < stop:
            return float("inf")
        half = stop // 2
        stacked = np.stack(
            [np.asarray(self._draws[c][half:stop]) for c in range(self.n_chains)]
        )
        return max_rhat(stacked)

    def converged(self, threshold: float = RHAT_THRESHOLD) -> bool:
        return self.rhat() < threshold


@dataclass
class ElisionReport:
    """Outcome of convergence detection on one run."""

    workload: str
    budget_iterations: int          # post-warmup iterations the user asked for
    converged_iteration: Optional[int]  # post-warmup iteration of detection
    rhat_trace: List[float] = field(default_factory=list)
    checkpoints: List[int] = field(default_factory=list)
    kl_trace: List[float] = field(default_factory=list)
    ess_trace: List[float] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return self.converged_iteration is not None

    @property
    def iterations_saved_fraction(self) -> float:
        """Fraction of post-warmup iterations elided (paper: ~70% average)."""
        if not self.converged:
            return 0.0
        return 1.0 - self.converged_iteration / self.budget_iterations

    def work_saved_fraction(self, result: SamplingResult) -> float:
        """Fraction of gradient-evaluation work elided, accounting for the
        unequal per-iteration cost the paper notes (latency savings are
        smaller than iteration savings)."""
        if not self.converged:
            return 0.0
        total = result.total_work
        spent = sum(
            chain.work_through(self.converged_iteration) for chain in result.chains
        )
        return 1.0 - spent / total


class ConvergenceDetector:
    """Replay runtime convergence detection over a recorded run."""

    def __init__(
        self,
        rhat_threshold: float = RHAT_THRESHOLD,
        check_interval: int = 20,
        min_iterations: int = 40,
        use_second_half: bool = True,
    ) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.rhat_threshold = rhat_threshold
        self.check_interval = check_interval
        self.min_iterations = min_iterations
        self.use_second_half = use_second_half

    def detect(
        self,
        result: SamplingResult,
        ground_truth: Optional[np.ndarray] = None,
    ) -> ElisionReport:
        """Find the first checkpoint where max R-hat < threshold.

        ``ground_truth`` (a pooled (n, dim) sample matrix from a doubled-
        budget run) adds a KL-divergence trace for result-quality curves
        (Figure 5's green line).
        """
        draws = result.stacked()  # (chains, kept, dim)
        n_kept = draws.shape[1]
        report = ElisionReport(
            workload=result.model_name,
            budget_iterations=n_kept,
            converged_iteration=None,
        )

        for stop in range(
            max(self.min_iterations, self.check_interval),
            n_kept + 1,
            self.check_interval,
        ):
            window_start = stop // 2 if self.use_second_half else 0
            window = draws[:, window_start:stop, :]
            rhat = max_rhat(window)
            report.checkpoints.append(stop)
            report.rhat_trace.append(rhat)
            if ground_truth is not None:
                pooled = window.reshape(-1, window.shape[-1])
                report.kl_trace.append(self._safe_kl(pooled, ground_truth))
            if rhat < self.rhat_threshold and report.converged_iteration is None:
                report.converged_iteration = stop

        return report

    @staticmethod
    def _safe_kl(pooled: np.ndarray, ground_truth: np.ndarray) -> float:
        try:
            return gaussian_kl(pooled, ground_truth)
        except (np.linalg.LinAlgError, ValueError):
            return float("nan")


class EssConvergenceDetector:
    """Alternative elision policy: stop at a target effective sample size.

    R-hat certifies that chains agree; ESS certifies that the pooled draws
    carry enough information. Practitioners often want both; the ablation
    bench compares the two policies' stopping points and savings. The API
    mirrors :class:`ConvergenceDetector`.
    """

    def __init__(
        self,
        target_ess: float = 400.0,
        check_interval: int = 20,
        min_iterations: int = 40,
    ) -> None:
        if target_ess <= 0:
            raise ValueError("target_ess must be positive")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.target_ess = target_ess
        self.check_interval = check_interval
        self.min_iterations = min_iterations

    def detect(self, result: SamplingResult) -> ElisionReport:
        """First checkpoint where the worst-parameter ESS reaches target."""
        draws = result.stacked()
        n_kept = draws.shape[1]
        report = ElisionReport(
            workload=result.model_name,
            budget_iterations=n_kept,
            converged_iteration=None,
        )
        for stop in range(
            max(self.min_iterations, self.check_interval),
            n_kept + 1,
            self.check_interval,
        ):
            ess = min_ess(draws[:, :stop, :])
            report.checkpoints.append(stop)
            report.ess_trace.append(ess)
            if ess >= self.target_ess and report.converged_iteration is None:
                report.converged_iteration = stop
        return report
