"""Tests for the work/span parallelism analysis and accelerator model."""

import numpy as np
import pytest

from repro.arch.accelerator import (
    AcceleratorConfig,
    AcceleratorModel,
    AcceleratorProjection,
)
from repro.arch.parallelism import GraphParallelism, analyze_graph, layer_schedule
from repro.models import BayesianModel, ParameterSpec
from repro.models import distributions as dist
from repro.autodiff import ops
from tests.test_arch_machine import make_profile


class WideModel(BayesianModel):
    """Many independent likelihood terms -> wide, shallow graph."""

    name = "wide"

    def __init__(self, n_blocks=8):
        super().__init__()
        self.n_blocks = n_blocks
        rng = np.random.default_rng(0)
        self.add_data(y=rng.normal(size=(n_blocks, 50)))

    @property
    def params(self):
        return [ParameterSpec("mu", self.n_blocks, init=0.0)]

    def log_joint(self, p):
        y = self.data("y")
        total = dist.normal_lpdf(p["mu"], 0.0, 5.0)
        for block in range(self.n_blocks):
            total = total + dist.normal_lpdf(y[block], p["mu"][block], 1.0)
        return total


class DeepModel(BayesianModel):
    """A long scalar dependency chain -> deep, narrow graph."""

    name = "deep"

    def __init__(self, depth=60):
        super().__init__()
        self.depth = depth
        self.add_data(y=np.array([1.0]))

    @property
    def params(self):
        return [ParameterSpec("x", 1, init=0.5)]

    def log_joint(self, p):
        z = p["x"]
        for _ in range(self.depth):
            z = ops.tanh(z * 1.01)
        return dist.normal_lpdf(self.data("y"), z, 1.0)


class TestAnalyzeGraph:
    def test_fields_consistent(self):
        analysis = analyze_graph(WideModel())
        assert analysis.n_nodes > 0
        assert analysis.work >= analysis.span > 0
        assert analysis.parallelism >= 1.0
        assert analysis.n_layers >= 2

    def test_wide_model_more_parallel_than_deep(self):
        wide = analyze_graph(WideModel())
        deep = analyze_graph(DeepModel())
        assert wide.parallelism > 2 * deep.parallelism

    def test_deep_chain_span_scales_with_depth(self):
        shallow = analyze_graph(DeepModel(depth=20))
        deep = analyze_graph(DeepModel(depth=80))
        assert deep.span > shallow.span
        assert deep.n_layers > shallow.n_layers

    def test_brent_bound_monotone_and_capped(self):
        analysis = analyze_graph(WideModel())
        speedups = [analysis.speedup_bound(p) for p in (1, 2, 8, 64, 10 ** 6)]
        assert all(b >= a - 1e-12 for a, b in zip(speedups, speedups[1:]))
        assert speedups[0] <= 1.0 + 1e-9
        assert speedups[-1] <= analysis.parallelism + 1e-9

    def test_speedup_bound_validation(self):
        analysis = analyze_graph(DeepModel(depth=10))
        with pytest.raises(ValueError, match="n_units"):
            analysis.speedup_bound(0)

    def test_layer_schedule_sums_to_nodes(self):
        model = WideModel()
        analysis = analyze_graph(model)
        layers = layer_schedule(model)
        assert sum(layers) == analysis.n_nodes
        assert max(layers) == analysis.max_layer_width

    def test_suite_workloads_expose_parallelism(self):
        from repro.suite import load_workload
        for name in ("ad", "votes"):
            analysis = analyze_graph(load_workload(name, scale=0.25))
            assert analysis.parallelism > 1.5, name


class TestAcceleratorModel:
    @pytest.fixture
    def parallel_graph(self):
        return GraphParallelism(
            workload="synthetic", n_nodes=200, work=1e6, span=1e4,
            max_layer_width=50, n_layers=20,
        )

    def test_more_lanes_fewer_cycles(self, parallel_graph):
        profile = make_profile()
        few = AcceleratorModel(AcceleratorConfig(vector_lanes=2))
        many = AcceleratorModel(AcceleratorConfig(vector_lanes=64))
        assert (
            many.cycles_per_work_unit(profile, parallel_graph)
            < few.cycles_per_work_unit(profile, parallel_graph)
        )

    def test_sfu_reduces_cycles(self, parallel_graph):
        profile = make_profile()
        with_sfu = AcceleratorModel(AcceleratorConfig(has_sfu=True))
        without = AcceleratorModel(AcceleratorConfig(has_sfu=False))
        assert (
            with_sfu.cycles_per_work_unit(profile, parallel_graph)
            < without.cycles_per_work_unit(profile, parallel_graph)
        )

    def test_scratchpad_fit_means_no_spill(self, parallel_graph):
        small_ws = make_profile(data_bytes=4 * 1024, intermediate_kb=20)
        model = AcceleratorModel(AcceleratorConfig(scratchpad_mb=16))
        projection = model.project(small_ws, parallel_graph)
        assert projection.compute_bound
        assert projection.spill_bytes == 0.0

    def test_oversized_working_set_spills(self, parallel_graph):
        big_ws = make_profile(data_bytes=400 * 1024, intermediate_kb=1100)
        model = AcceleratorModel(AcceleratorConfig(scratchpad_mb=2))
        projection = model.project(big_ws, parallel_graph)
        assert not projection.compute_bound
        assert projection.spill_bytes > 0

    def test_projection_speedup(self, parallel_graph):
        profile = make_profile()
        model = AcceleratorModel(AcceleratorConfig())
        projection = model.project(profile, parallel_graph)
        assert isinstance(projection, AcceleratorProjection)
        assert projection.seconds_per_iteration > 0
        assert projection.speedup_over(1.0) > 0
