"""End-to-end fleet tests: replicas × shards over one shared queue root.

The acceptance invariants of the fleet PR, on a live two-replica fleet:

* every accepted spec runs exactly once, on the replica owning its shard,
  and a misrouted submission is redirected (421) to the owner;
* duplicate submissions — same replica or different replicas — fold into
  one execution via consistent routing plus the shared result store;
* a replica that dies mid-drain loses its shard leases, a peer adopts the
  shards, and every parked entry is re-run **bit-identically**;
* ``/healthz`` reports the replica's identity and owned leases, and
  ``repro fleet status`` aggregates them.
"""

import time

import numpy as np
import pytest

from repro.client import FleetClient, GatewayClient, MisdirectedError
from repro.fleet import (
    FleetBox,
    FleetMember,
    FleetPlacement,
    FleetTopology,
    ShardedQueue,
)
from repro.gateway import Gateway
from repro.serve import InferenceServer, JobSpec
from repro.serve.store import ResultStore
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer


def make_spec(seed: int) -> JobSpec:
    return JobSpec(
        workload="votes",
        engine="mh",
        n_iterations=120,
        n_warmup=60,
        n_chains=2,
        seed=seed,
        scale=0.5,
        elide=True,
        check_interval=10,
        min_kept=10,
    )


def two_box_topology(n_shards=2, urls=(None, None)):
    return FleetTopology(
        n_shards=n_shards,
        boxes=(
            FleetBox("r0", "skylake", urls[0], (0,)),
            FleetBox("r1", "broadwell", urls[1], (1,)),
        ),
    )


def boot_replica(queue_root, store_dir, topology, replica_id, ttl=10.0):
    server = InferenceServer(
        n_workers=2, placement=False,
        registry=MetricsRegistry(), tracer=Tracer(),
        store=ResultStore(str(store_dir)),
    )
    member = FleetMember(queue_root, topology, replica_id, ttl=ttl)
    gateway = Gateway(server, port=0, fleet=member)
    server.__enter__()
    gateway.start()
    return server, gateway


def rebind_urls(gateways, topology_factory):
    """Close the bootstrap loop: replicas bind ephemeral ports, so the
    topology's URLs only exist after start — rebind them everywhere.
    (The ring ignores URLs, so routing is unchanged.)"""
    topology = topology_factory(urls=tuple(g.url for g in gateways))
    for gateway in gateways:
        gateway.fleet.topology = topology
        gateway.fleet.placement.topology = topology
    return topology


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """Two replicas × two shards, a batch of jobs pushed through, all
    terminal."""
    queue_root = tmp_path_factory.mktemp("fleet-queue")
    store_dir = tmp_path_factory.mktemp("fleet-results")
    stack = []
    gateways = []
    for replica_id in ("r0", "r1"):
        server, gateway = boot_replica(
            queue_root, store_dir, two_box_topology(), replica_id
        )
        stack.append((server, gateway))
        gateways.append(gateway)
    topology = rebind_urls(gateways, lambda urls: two_box_topology(urls=urls))

    client = FleetClient([g.url for g in gateways])
    specs = [make_spec(seed) for seed in range(6)]
    views = [client.submit(spec) for spec in specs]
    finals = [
        client.wait(view["job_id"], timeout=180) for view in views
    ]
    try:
        yield {
            "gateways": gateways,
            "topology": topology,
            "client": client,
            "queue_root": queue_root,
            "specs": specs,
            "views": views,
            "finals": finals,
        }
    finally:
        for server, gateway in stack:
            gateway.stop()
            server.__exit__(None, None, None)


class TestFleetE2E:
    def test_every_job_terminal_and_unduplicated(self, fleet):
        assert all(f["terminal"] for f in fleet["finals"])
        assert all(f["state"] in ("done", "converged") for f in fleet["finals"])
        # One accepted spec, one execution: no job ran more than once.
        assert all(f["attempts"] == 1 for f in fleet["finals"])

    def test_jobs_landed_on_their_routed_replica(self, fleet):
        placement = FleetPlacement(fleet["topology"])
        owners = {0: fleet["gateways"][0], 1: fleet["gateways"][1]}
        for spec, view in zip(fleet["specs"], fleet["views"]):
            shard = placement.shard_for(spec)
            owner = owners[shard]
            other = owners[1 - shard]
            assert owner.job(view["job_id"]) is not None
            assert other.job(view["job_id"]) is None

    def test_wrong_replica_is_a_typed_421_redirect(self, fleet):
        placement = FleetPlacement(fleet["topology"])
        spec = make_spec(999)
        shard = placement.shard_for(spec)
        wrong = fleet["gateways"][1 - shard]
        right = fleet["gateways"][shard]
        with pytest.raises(MisdirectedError) as info:
            GatewayClient(wrong.url).submit(spec)
        err = info.value
        assert err.status == 421
        assert err.shard == shard
        assert err.owner == right.replica_id
        assert err.owner_url == right.url

    def test_duplicate_submission_folds_across_replicas(self, fleet):
        """The same spec via any replica reaches the same job exactly
        once: consistent routing + durable-queue dedup + shared store."""
        spec = fleet["specs"][0]
        view = fleet["client"].submit(spec)  # resubmit after completion
        assert view["deduped"] is True
        assert view["terminal"] and view["state"] == "done"
        assert view["attempts"] == 0  # answered from the store, not rerun

    def test_healthz_reports_identity_and_disjoint_leases(self, fleet):
        health = fleet["client"].healthz()
        assert len(health) == 2
        owned = {}
        for view in health.values():
            assert view["status"] == "ok"
            assert view["n_shards"] == 2
            for lease in view["leases"]:
                assert lease["epoch"] >= 1
                assert lease["expires_in"] > 0
                assert lease["shard"] not in owned
                owned[lease["shard"]] = view["replica_id"]
        assert set(owned) == {0, 1}
        assert len(set(owned.values())) == 2

    def test_fleet_status_cli_aggregates(self, fleet, capsys):
        from repro.cli import main

        code = main([
            "fleet", "status",
            "--url", fleet["gateways"][0].url,
            "--url", fleet["gateways"][1].url,
            "--queue-dir", str(fleet["queue_root"]),
            "--shards", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "r0" in out and "r1" in out
        # The on-disk lease table section lists both shards with owners.
        lines = [l for l in out.splitlines() if l.strip().startswith(("0", "1"))]
        assert len(lines) == 2

    def test_draws_bit_identical_to_single_replica(self, fleet, tmp_path):
        """The fleet answer is the single-box answer, bit for bit."""
        spec = fleet["specs"][0]
        job_id = fleet["views"][0]["job_id"]
        fleet_result = fleet["client"].result(job_id, include_draws=True)
        fleet_draws = GatewayClient.draws(fleet_result)

        server = InferenceServer(
            n_workers=2, placement=False,
            registry=MetricsRegistry(), tracer=Tracer(),
            store=ResultStore(str(tmp_path / "solo-results")),
        )
        with server, Gateway(server, port=0) as solo:
            solo_client = GatewayClient(solo.url)
            solo_id = solo_client.submit(spec)["job_id"]
            solo_client.wait(solo_id, timeout=120)
            solo_draws = GatewayClient.draws(
                solo_client.result(solo_id, include_draws=True)
            )
        np.testing.assert_array_equal(fleet_draws, solo_draws)


class TestTakeover:
    def test_successor_adopts_dead_replicas_shards_and_reruns(
        self, tmp_path
    ):
        """SIGKILL-equivalent: a replica's shard log holds a pending entry
        and an orphan (started, never finished) when its lease lapses.
        The surviving replica must adopt the shard, replay both entries,
        and produce bit-identical draws to a healthy run."""
        queue_root = tmp_path / "queue"
        store_dir = tmp_path / "results"
        specs = [make_spec(41), make_spec(42)]

        # The dead replica's on-disk wreckage: shard 1 written as if r1 died
        # mid-drain — no process needed, the files are the failure mode.
        queue = ShardedQueue(queue_root, 2)
        producer = queue.producer(1)
        pending_id = producer.submit(specs[0])
        orphan_id = producer.submit(specs[1])
        producer.mark_running(orphan_id)  # started, never finished
        dead = queue.lease(1, "r1", ttl=0.1)
        assert dead.acquire()
        time.sleep(0.2)  # the lease lapses; r1 never renews (it is "dead")

        # Survivor: prefers shard 0, heartbeats fast so the test is quick.
        server, gateway = boot_replica(
            queue_root, store_dir, two_box_topology(), "r0", ttl=1.2
        )
        try:
            assert 0 in gateway.fleet.owned_shards
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if (
                    1 in gateway.fleet.leases
                    and len(gateway.jobs()) == 2
                    and all(j.state.terminal for j in gateway.jobs())
                ):
                    break
                time.sleep(0.1)
            assert gateway.fleet.owned_shards == [0, 1]
            jobs = {j.spec.key(): j for j in gateway.jobs()}
            assert len(jobs) == 2

            # The takeover went through a real epoch bump.
            state = queue.lease_table()[1]
            assert state.owner == "r0"
            assert state.epoch == dead.epoch + 1

            # Both entries finished durably in shard 1's log.
            replay = queue.producer(1).load(compact=False)
            assert replay.pending == [] and replay.orphaned == []

            # Bit-identity: each recovered job matches a fresh reference
            # run of the same spec on an untouched server.
            reference = InferenceServer(
                n_workers=2, placement=False,
                registry=MetricsRegistry(), tracer=Tracer(),
            )
            with reference:
                for spec in specs:
                    ref_job = reference.submit(spec)
                    reference.run_until_drained()
                    recovered = jobs[spec.key()]
                    assert recovered.state.value in ("done", "converged")
                    for ref_chain, got_chain in zip(
                        ref_job.result.chains, recovered.result.chains
                    ):
                        np.testing.assert_array_equal(
                            ref_chain.samples, got_chain.samples
                        )
        finally:
            gateway.stop()
            server.__exit__(None, None, None)

    def test_stale_drainer_cannot_mark_after_takeover(self, tmp_path):
        """The fencing half of the SIGKILL story: if the 'dead' replica
        was merely stalled and wakes up, its durable marks are vetoed."""
        queue_root = tmp_path / "queue"
        queue = ShardedQueue(queue_root, 2)
        entry = queue.producer(1).submit(make_spec(1))
        stalled = queue.lease(1, "r1", ttl=0.1)
        assert stalled.acquire()
        consumer = queue.consumer(1, stalled.check)
        time.sleep(0.2)
        successor = queue.lease(1, "r0", ttl=10.0)
        assert successor.acquire()
        from repro.fleet import LeaseLostError

        before = queue.path(1).read_bytes()
        with pytest.raises(LeaseLostError):
            consumer.mark_running(entry)
        assert queue.path(1).read_bytes() == before
