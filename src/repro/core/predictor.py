"""LLC miss prediction from modeled data size (paper Section V-A).

The paper's observation: the 4-core LLC miss rate of a Bayesian inference
job is predictable *before execution* from a static feature — the modeled
data size (the bytes of observed data the likelihood iterates over). For
workloads above 1 MPKI the relationship is close to linear; below 1 MPKI it
is noise-dominated (prefetchers, replacement policy) and only the
LLC-bound/not-LLC-bound classification matters.

:class:`LlcMissPredictor` implements both pieces: a least-squares line fit
on the >=1 MPKI points and a data-size threshold classifier chosen to
maximize the margin between the classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

#: The paper's MPKI level separating LLC-bound from benign workloads.
LLC_BOUND_MPKI = 1.0


@dataclass(frozen=True)
class PredictionPoint:
    """One (workload variant, platform config) observation for fitting."""

    name: str
    modeled_data_bytes: float
    llc_mpki: float

    @property
    def llc_bound(self) -> bool:
        return self.llc_mpki >= LLC_BOUND_MPKI


class LlcMissPredictor:
    """Static LLC-miss predictor: threshold classifier + linear regressor."""

    def __init__(self) -> None:
        self.threshold_bytes: float | None = None
        self.slope: float | None = None
        self.intercept: float | None = None
        self._fitted = False

    # -- fitting --------------------------------------------------------------

    def fit(self, points: Sequence[PredictionPoint]) -> "LlcMissPredictor":
        """Fit from characterization observations (Figure 3's point cloud)."""
        if len(points) < 2:
            raise ValueError("need at least two points to fit the predictor")

        bound = sorted(p.modeled_data_bytes for p in points if p.llc_bound)
        benign = sorted(p.modeled_data_bytes for p in points if not p.llc_bound)
        if bound and benign:
            largest_benign = max(benign)
            smallest_bound = min(bound)
            if smallest_bound > largest_benign:
                # Maximum-margin threshold between the classes (geometric
                # midpoint, since sizes span orders of magnitude).
                self.threshold_bytes = float(
                    np.sqrt(largest_benign * smallest_bound)
                )
            else:
                # Overlapping classes: best single split by accuracy.
                self.threshold_bytes = self._best_split(points)
        elif bound:
            self.threshold_bytes = float(min(bound)) * 0.5
        else:
            self.threshold_bytes = float(max(benign)) * 2.0

        # Linear fit on the confidently-predictable region (>= 1 MPKI).
        xs = np.array([p.modeled_data_bytes for p in points if p.llc_bound])
        ys = np.array([p.llc_mpki for p in points if p.llc_bound])
        if xs.size >= 2:
            slope, intercept = np.polyfit(xs, ys, deg=1)
            self.slope = float(slope)
            self.intercept = float(intercept)
        self._fitted = True
        return self

    @staticmethod
    def _best_split(points: Sequence[PredictionPoint]) -> float:
        candidates = sorted({p.modeled_data_bytes for p in points})
        best_threshold, best_correct = candidates[0], -1
        for i in range(len(candidates) - 1):
            threshold = np.sqrt(candidates[i] * candidates[i + 1])
            correct = sum(
                (p.modeled_data_bytes >= threshold) == p.llc_bound for p in points
            )
            if correct > best_correct:
                best_correct, best_threshold = correct, threshold
        return float(best_threshold)

    # -- prediction -----------------------------------------------------------

    def predict_llc_bound(self, modeled_data_bytes: float) -> bool:
        """Will this job be LLC-bound at 4 cores? (the scheduling signal)"""
        self._require_fitted()
        return modeled_data_bytes >= self.threshold_bytes

    def predict_mpki(self, modeled_data_bytes: float) -> float:
        """Point estimate of the 4-core LLC MPKI.

        Only meaningful above the threshold; below it the paper's model
        deliberately refuses precision and returns a sub-1 placeholder.
        """
        self._require_fitted()
        if not self.predict_llc_bound(modeled_data_bytes):
            return 0.5 * LLC_BOUND_MPKI
        if self.slope is None:
            return LLC_BOUND_MPKI
        return max(
            self.slope * modeled_data_bytes + self.intercept, LLC_BOUND_MPKI
        )

    def r_squared(self, points: Sequence[PredictionPoint]) -> float:
        """Fit quality on the >=1 MPKI region (the paper's 'accurate' claim)."""
        self._require_fitted()
        bound = [p for p in points if p.llc_bound]
        if len(bound) < 2 or self.slope is None:
            return float("nan")
        ys = np.array([p.llc_mpki for p in bound])
        preds = np.array([self.predict_mpki(p.modeled_data_bytes) for p in bound])
        ss_res = float(((ys - preds) ** 2).sum())
        ss_tot = float(((ys - ys.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0
        return 1.0 - ss_res / ss_tot

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("predictor is not fitted; call fit() first")


def characterization_points(
    profiles, machine, n_cores: int = 4, n_chains: int = 4
) -> List[PredictionPoint]:
    """Build the Figure 3 point cloud from workload profiles and a machine
    model (one point per profile, e.g. full/-h/-q dataset variants)."""
    points = []
    for profile in profiles:
        counters = machine.counters(profile, n_cores=n_cores, n_chains=n_chains)
        points.append(
            PredictionPoint(
                name=profile.name,
                modeled_data_bytes=profile.modeled_data_bytes,
                llc_mpki=counters.llc_mpki,
            )
        )
    return points
