"""Constrained <-> unconstrained parameter transforms with log-Jacobians.

Samplers work on an unconstrained real vector; models declare constrained
parameters (positive scales, probabilities, ordered cut points). Each
transform maps unconstrained ``z`` to the constrained value and reports the
log absolute determinant of the Jacobian, which the model base class adds to
the log density — exactly as the Stan runtime does.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np
from scipy import special as sps

from repro.autodiff import ops
from repro.autodiff.tape import Var


class Transform(abc.ABC):
    """Bijection between an unconstrained vector and a constrained value."""

    @abc.abstractmethod
    def constrain(self, z: Var) -> Tuple[Var, Var]:
        """Map unconstrained ``z`` to (constrained value, scalar log|J|)."""

    @abc.abstractmethod
    def unconstrain(self, value: np.ndarray) -> np.ndarray:
        """Inverse map, used to build initial points from constrained guesses."""

    def constrain_np(self, z: np.ndarray) -> np.ndarray:
        """Numpy-only forward map (no tape), for posterior post-processing."""
        constrained, _ = self.constrain(Var(np.asarray(z, dtype=float)))
        return np.asarray(constrained.value)


class Identity(Transform):
    """No constraint: parameters that live on the whole real line."""

    def constrain(self, z: Var) -> Tuple[Var, Var]:
        return z, ops.constant(0.0)

    def unconstrain(self, value: np.ndarray) -> np.ndarray:
        return np.asarray(value, dtype=float)

    def constrain_np(self, z: np.ndarray) -> np.ndarray:
        return np.asarray(z, dtype=float)


class Positive(Transform):
    """Positivity via exp: value = exp(z), log|J| = sum(z)."""

    def constrain(self, z: Var) -> Tuple[Var, Var]:
        return ops.exp(z), ops.sum(z)

    def unconstrain(self, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        if np.any(value <= 0):
            raise ValueError("Positive transform requires strictly positive values")
        return np.log(value)

    def constrain_np(self, z: np.ndarray) -> np.ndarray:
        return np.exp(np.asarray(z, dtype=float))


class Interval(Transform):
    """Bounded interval via scaled logistic: value = lo + (hi-lo)*sigmoid(z)."""

    def __init__(self, lo: float = 0.0, hi: float = 1.0) -> None:
        if not hi > lo:
            raise ValueError(f"Interval requires hi > lo, got [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)

    def constrain(self, z: Var) -> Tuple[Var, Var]:
        width = self.hi - self.lo
        sig = ops.sigmoid(z)
        value = sig * width + self.lo
        # log|J| = sum log(width * s * (1-s)) = log(width) + log_sigmoid(z) + log_sigmoid(-z)
        count = float(z.size)
        log_jac = (
            ops.sum(ops.log_sigmoid(z))
            + ops.sum(ops.log_sigmoid(-z))
            + np.log(width) * count
        )
        return value, log_jac

    def unconstrain(self, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        u = (value - self.lo) / (self.hi - self.lo)
        if np.any(u <= 0) or np.any(u >= 1):
            raise ValueError("Interval transform requires values strictly inside bounds")
        return sps.logit(u)

    def constrain_np(self, z: np.ndarray) -> np.ndarray:
        return self.lo + (self.hi - self.lo) * sps.expit(np.asarray(z, dtype=float))


class Ordered(Transform):
    """Strictly increasing vector: v_0 = z_0, v_k = v_{k-1} + exp(z_k).

    log|J| = sum_{k>=1} z_k.
    """

    def constrain(self, z: Var) -> Tuple[Var, Var]:
        if z.ndim != 1 or z.size < 1:
            raise ValueError("Ordered transform requires a 1-D vector")
        first = z[0:1]
        if z.size == 1:
            return z, ops.constant(0.0)
        rest = ops.exp(z[1:])
        increments = ops.concat([first, rest])
        return ops.cumsum(increments), ops.sum(z[1:])

    def unconstrain(self, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        if np.any(np.diff(value) <= 0):
            raise ValueError("Ordered transform requires strictly increasing values")
        out = np.empty_like(value)
        out[0] = value[0]
        out[1:] = np.log(np.diff(value))
        return out

    def constrain_np(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        increments = np.concatenate([z[:1], np.exp(z[1:])])
        return np.cumsum(increments)


class Simplex(Transform):
    """Probability simplex via Stan's stick-breaking construction.

    An unconstrained vector of length K-1 maps to a length-K simplex.
    """

    def __init__(self, size: int) -> None:
        if size < 2:
            raise ValueError("Simplex requires size >= 2")
        self.size = int(size)

    @property
    def unconstrained_size(self) -> int:
        return self.size - 1

    def constrain(self, z: Var) -> Tuple[Var, Var]:
        if z.size != self.size - 1:
            raise ValueError(
                f"Simplex({self.size}) expects {self.size - 1} unconstrained values"
            )
        k = self.size
        remaining = ops.constant(1.0)
        parts = []
        log_jac = ops.constant(0.0)
        for i in range(k - 1):
            # Stan offsets the logit so a zero vector maps to the uniform simplex.
            offset = float(np.log(1.0 / (k - i - 1)))
            frac = ops.sigmoid(z[i] + offset)
            piece = remaining * frac
            parts.append(piece)
            log_jac = (
                log_jac
                + ops.log(remaining)
                + ops.log_sigmoid(z[i] + offset)
                + ops.log_sigmoid(-(z[i] + offset))
            )
            remaining = remaining - piece
        parts.append(remaining)
        return ops.stack(parts), log_jac

    def unconstrain(self, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        if value.size != self.size or not np.isclose(value.sum(), 1.0):
            raise ValueError("Simplex.unconstrain requires a length-K simplex")
        k = self.size
        z = np.empty(k - 1)
        remaining = 1.0
        for i in range(k - 1):
            frac = value[i] / remaining
            offset = np.log(1.0 / (k - i - 1))
            z[i] = sps.logit(np.clip(frac, 1e-12, 1.0 - 1e-12)) - offset
            remaining -= value[i]
        return z
