"""Fault tolerance end-to-end: supervised workers, retry policy, recovery.

These tests script failures with :mod:`repro.serve.faults` and assert the
two headline guarantees of the fault-tolerant service:

* a SIGKILL'd worker is detected within about one poll interval (not the
  job timeout), respawned, and its chain re-run or resumed — with final
  draws **bit-identical** to a run that never failed;
* a poison job (deterministic failure, e.g. a non-finite log-density at the
  initial position) is quarantined to FAILED after ``max_attempts`` with
  every attempt's traceback, without blocking other queued work.

Longer scenarios (hang detection, restart-budget exhaustion, elision under
injected kills) are marked ``slow`` and run in the scheduled CI job.
"""

import time

import numpy as np
import pytest

from repro.inference import run_chains
from repro.inference.engines import build_engine
from repro.serve import (
    ChainExecutionError,
    ChainWorkerPool,
    InferenceServer,
    Job,
    JobSpec,
    JobState,
    RetryPolicy,
    chain_tasks,
    classify_failure,
)
from repro.serve.faults import (
    ENV_VAR,
    Fault,
    FaultInjector,
    InjectedFaultError,
    installed,
    read_plan,
    write_plan,
)
from repro.suite import load_workload


class TestFaultPlans:
    def test_plan_roundtrip(self, tmp_path):
        plan = tmp_path / "faults.json"
        faults = [
            Fault(kind="kill", iteration=20, chain_index=1),
            Fault(kind="nan_logp", iteration=-1, job_id="abc"),
            Fault(kind="hang", iteration=5, seconds=9.0, max_fires=2),
        ]
        write_plan(str(plan), faults)
        assert read_plan(str(plan)) == faults

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor", iteration=0)

    def test_installed_sets_and_restores_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with installed(str(tmp_path / "plan.json")) as path:
            import os

            assert os.environ[ENV_VAR] == path
        import os

        assert ENV_VAR not in os.environ

    def test_injector_fires_once_across_claims(self, tmp_path):
        plan = str(tmp_path / "plan.json")
        write_plan(plan, [Fault(kind="raise", iteration=3)])
        injector = FaultInjector(read_plan(plan), plan)
        with pytest.raises(InjectedFaultError):
            injector.on_iteration("job", 0, 3)
        # The sentinel is spent: a deterministic replay sails through.
        injector.on_iteration("job", 0, 3)

    def test_missing_plan_disables_injection(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "nonexistent.json"))
        assert FaultInjector.from_env() is None


class TestRetryingState:
    def test_running_to_retrying_roundtrip(self):
        job = Job(JobSpec(workload="votes", engine="mh", n_iterations=20))
        job.transition(JobState.RUNNING)
        job.transition(JobState.RETRYING)
        assert not job.state.terminal
        job.transition(JobState.RUNNING)
        job.transition(JobState.RETRYING)
        job.transition(JobState.FAILED)
        assert job.state.terminal

    def test_retrying_cannot_complete_directly(self):
        job = Job(JobSpec(workload="votes", engine="mh", n_iterations=20))
        job.transition(JobState.RUNNING)
        job.transition(JobState.RETRYING)
        with pytest.raises(ValueError, match="illegal job transition"):
            job.transition(JobState.DONE)

    def test_classify_failure(self):
        poison = ChainExecutionError("j", {0: "tb"}, {0: "poison"})
        mixed = ChainExecutionError("j", {0: "a", 1: "b"},
                                    {0: "transient", 1: "poison"})
        transient = ChainExecutionError("j", {0: "tb"}, {0: "transient"})
        assert classify_failure(poison) == "poison"
        assert classify_failure(mixed) == "poison"
        assert classify_failure(transient) == "transient"
        assert classify_failure(TimeoutError("x")) == "transient"
        assert classify_failure(RuntimeError("x")) == "poison"

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_backoff=0.5, max_backoff=1.5)
        assert policy.backoff("transient", 1) == 0.5
        assert policy.backoff("transient", 2) == 1.0
        assert policy.backoff("transient", 3) == 1.5  # capped
        assert policy.backoff("poison", 1) == 0.0


KILL_SPEC = JobSpec(
    workload="votes",
    engine="mh",
    n_iterations=60,
    n_warmup=30,
    n_chains=2,
    seed=4,
    scale=0.25,
    elide=False,
    checkpoint_interval=10,
)


def _sequential(spec: JobSpec):
    return run_chains(
        load_workload(spec.workload, scale=spec.scale, seed=spec.dataset_seed),
        build_engine(spec.engine, spec.engine_options),
        n_iterations=spec.n_iterations,
        n_warmup=spec.resolved_warmup,
        n_chains=spec.n_chains,
        seed=spec.seed,
        initial_jitter=spec.initial_jitter,
    )


def _assert_bit_identical(result, reference):
    for got, want in zip(result.chains, reference.chains):
        np.testing.assert_array_equal(got.samples, want.samples)
        np.testing.assert_array_equal(got.logps, want.logps)
        np.testing.assert_array_equal(
            got.work_per_iteration, want.work_per_iteration
        )


def test_sigkilled_worker_is_detected_resumed_and_bit_identical(tmp_path):
    """The acceptance scenario: kill a worker mid-chain; the supervisor
    notices within ~poll_interval, respawns it, resumes the chain from its
    checkpoint, and the job's draws equal an unfailed run's exactly."""
    plan = str(tmp_path / "plan.json")
    write_plan(plan, [Fault(kind="kill", iteration=40, chain_index=1)])
    pool = ChainWorkerPool(
        n_workers=2, poll_interval=0.2, job_timeout=120.0,
    )
    with installed(plan):
        with InferenceServer(
            pool=pool, placement=False,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ) as server:
            job = server.submit(KILL_SPEC)
            started = time.monotonic()
            finished = server.run_until_drained()
            elapsed = time.monotonic() - started
    assert finished == [job]
    assert job.state is JobState.DONE
    # The pool healed the loss itself: no server-level retry was needed,
    # and detection keyed off the poll interval, not job_timeout.
    assert job.attempts == 1
    assert pool.restarted_workers >= 1
    assert elapsed < 60.0
    _assert_bit_identical(job.result, _sequential(KILL_SPEC))


def test_poison_job_quarantined_without_blocking_queue(tmp_path):
    plan = str(tmp_path / "plan.json")
    with installed(plan):
        with InferenceServer(
            n_workers=2, placement=False,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.0),
        ) as server:
            poison = server.submit(
                "votes", engine="mh", n_iterations=30, n_chains=2, seed=9,
                scale=0.25, elide=False, priority=5,
            )
            healthy = server.submit(
                "votes", engine="mh", n_iterations=30, n_chains=2, seed=11,
                scale=0.25, elide=False,
            )
            # Poison exactly the high-priority job's initial density.
            write_plan(plan, [
                Fault(kind="nan_logp", iteration=-1, job_id=poison.job_id),
            ])
            finished = server.run_until_drained()

    assert [job.job_id for job in finished] == [poison.job_id, healthy.job_id]
    assert poison.state is JobState.FAILED
    assert poison.attempts == 3
    assert poison.failure_kind == "poison"
    assert len(poison.attempt_errors) == 3
    assert "non-finite" in poison.error
    assert "failed after 3 attempt(s)" in poison.error
    # The quarantine never blocked the rest of the queue.
    assert healthy.state is JobState.DONE
    assert poison.spec.key() not in server.store


def test_injected_raise_is_classified_poison(tmp_path):
    plan = str(tmp_path / "plan.json")
    write_plan(plan, [Fault(kind="raise", iteration=10, chain_index=0)])
    spec = JobSpec(workload="votes", engine="mh", n_iterations=30,
                   n_chains=2, seed=2, scale=0.25, elide=False)
    with installed(plan):
        with ChainWorkerPool(n_workers=2, poll_interval=0.2) as pool:
            with pytest.raises(ChainExecutionError) as err:
                pool.run_job(chain_tasks(spec, "raise-job"))
    assert err.value.poison
    assert err.value.kinds[0] == "poison"
    assert "injected fault" in err.value.tracebacks[0]
    # The pool survives for the next job.
    chains = pool.run_job(chain_tasks(spec, "after-raise"))
    assert len(chains) == 2


@pytest.mark.slow
def test_restart_budget_exhaustion_is_transient_failure(tmp_path):
    """A chain whose worker dies on every replay exhausts the pool's
    restart budget and surfaces as a transient job failure; the server
    retries the whole job and finally quarantines it as FAILED."""
    plan = str(tmp_path / "plan.json")
    write_plan(plan, [
        Fault(kind="kill", iteration=10, chain_index=1, max_fires=20),
    ])
    pool = ChainWorkerPool(
        n_workers=2, poll_interval=0.1, max_chain_restarts=2,
        job_timeout=120.0,
    )
    with installed(plan):
        with InferenceServer(
            pool=pool, placement=False,
            retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.0),
        ) as server:
            job = server.submit(
                "votes", engine="mh", n_iterations=40, n_chains=2, seed=6,
                scale=0.25, elide=False,
            )
            server.run_until_drained()
    assert job.state is JobState.FAILED
    assert job.failure_kind == "transient"
    assert job.attempts == 2
    assert "worker lost" in job.error


@pytest.mark.slow
def test_hung_worker_is_reaped_by_heartbeat_timeout(tmp_path):
    plan = str(tmp_path / "plan.json")
    write_plan(plan, [Fault(kind="hang", iteration=20, chain_index=0,
                            seconds=600.0)])
    spec = JobSpec(workload="votes", engine="mh", n_iterations=60,
                   n_warmup=30, n_chains=2, seed=4, scale=0.25, elide=False)
    pool = ChainWorkerPool(
        n_workers=2, poll_interval=0.2, heartbeat_interval=0.2,
        heartbeat_timeout=3.0, job_timeout=120.0,
    )
    with installed(plan):
        with pool:
            started = time.monotonic()
            chains = pool.run_job(chain_tasks(spec, "hang-job"))
            elapsed = time.monotonic() - started
    assert pool.restarted_workers >= 1
    assert elapsed < 60.0
    _assert_bit_identical(
        type("R", (), {"chains": chains})(), _sequential(spec)
    )


@pytest.mark.slow
def test_kill_under_elision_still_matches_sequential_prefix(tmp_path):
    """Worker loss composes with mid-run elision: the monitor's chain reset
    plus the deterministic replay keep the CONVERGED result bit-identical
    to the unfailed elided run."""
    spec = JobSpec(
        workload="12cities", engine="nuts", n_iterations=180, n_warmup=60,
        n_chains=3, seed=3, scale=0.25, checkpoint_interval=25,
    )
    plan = str(tmp_path / "plan.json")
    with installed(plan):
        pool = ChainWorkerPool(n_workers=3, poll_interval=0.2,
                               job_timeout=300.0)
        with InferenceServer(
            pool=pool, placement=False,
            checkpoint_dir=str(tmp_path / "ckpt"),
        ) as server:
            job = server.submit(spec)
            write_plan(plan, [
                Fault(kind="kill", iteration=70, chain_index=1,
                      job_id=job.job_id),
            ])
            server.run_until_drained()
    assert job.state is JobState.CONVERGED
    assert pool.restarted_workers >= 1
    assert job.elision.converged_kept == 60
    total = spec.resolved_warmup + job.elision.converged_kept
    sequential = run_chains(
        load_workload(spec.workload, scale=spec.scale),
        build_engine(spec.engine, spec.engine_options),
        n_iterations=total, n_warmup=spec.resolved_warmup,
        n_chains=spec.n_chains, seed=spec.seed,
    )
    for got, want in zip(job.result.chains, sequential.chains):
        np.testing.assert_array_equal(got.samples, want.samples)
        np.testing.assert_array_equal(got.logps, want.logps)
