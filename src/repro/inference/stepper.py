"""The resumable per-step protocol between samplers and gradient executors.

HMC and NUTS expose their iteration logic as *step generators*
(``sample_steps``): instead of calling ``logp_and_grad`` directly, the
generator **yields** each position it needs evaluated and receives the
``(logp, gradient)`` pair back through ``send``. The generator's return
value (via ``StopIteration``) is the finished
:class:`~repro.inference.results.ChainResult`.

This inversion is what makes cross-chain batching possible: a driver can
hold one suspended generator per chain, collect every chain's pending
position, evaluate them as one batched tape replay
(:mod:`repro.batch`), and resume each generator with its own lane's
result. Because the generator contains the *entire* sampler loop —
adaptation, RNG consumption, hooks, state capture — unchanged, driving it
with a plain sequential evaluator (:func:`drive_steps`) reproduces the
classic ``sample_chain`` bit for bit; that is exactly what
``sample_chain`` now does.

A yielded item is either a bare position array or an :class:`EvalRequest`
wrapping one. The request form carries an optional
:class:`SpeculationPlan`: the sampler's own prediction of the *next*
position it will ask for, plus the RNG bit-generator state it will have
when asking. A batched driver may evaluate the prediction early on an
idle lane; the plan's validity rule (position bit-equal **and** RNG state
equal) guarantees a validated prefetch answer is exactly what the
evaluator would have returned, so speculation can never change results —
only skip work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

import numpy as np

__all__ = ["EvalRequest", "SpeculationPlan", "StepGenerator", "drive_steps"]


@dataclass
class SpeculationPlan:
    """A sampler's prediction of its next evaluation request.

    ``x`` is the predicted next position; ``rng_state`` is the RNG
    bit-generator state the sampler will hold when it issues that request.
    A prefetched result may answer a later request only when the request's
    position is bit-equal to ``x`` *and* the sampler RNG's state equals
    ``rng_state`` — together these imply the sampler took exactly the
    predicted path, so the deterministic evaluator would return the
    prefetched numbers verbatim.
    """

    x: np.ndarray
    rng_state: dict


class EvalRequest:
    """One pending gradient evaluation, optionally carrying a speculation.

    Step generators yield bare arrays on the hot path; they wrap the
    position in an ``EvalRequest`` only when there is a plan to attach,
    so sequential driving pays nothing for the protocol.
    """

    __slots__ = ("x", "plan")

    def __init__(self, x: np.ndarray, plan: Optional[SpeculationPlan] = None) -> None:
        self.x = x
        self.plan = plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvalRequest(shape={np.shape(self.x)}, plan={self.plan is not None})"


#: A sampler step machine: yields positions (or EvalRequests), receives
#: ``(logp, grad)`` pairs, returns the finished chain result.
StepGenerator = Generator["np.ndarray | EvalRequest", Tuple[float, np.ndarray], object]


def request_position(request) -> np.ndarray:
    """The position inside a yielded item (bare array or EvalRequest)."""
    return request.x if type(request) is EvalRequest else request


def drive_steps(gen: StepGenerator, logp_and_grad):
    """Run a step generator to completion with a sequential evaluator.

    The reference driver: evaluates each yielded position immediately and
    in order, which consumes the generator's RNG stream exactly as the
    pre-generator ``sample_chain`` loops did. Returns the generator's
    return value.
    """
    try:
        request = next(gen)
        while True:
            x = request.x if type(request) is EvalRequest else request
            request = gen.send(logp_and_grad(x))
    except StopIteration as stop:
        return stop.value
