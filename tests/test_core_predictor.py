"""Tests for the Section V-A LLC miss predictor."""

import numpy as np
import pytest

from repro.arch.machine import MachineModel
from repro.arch.platforms import SKYLAKE
from repro.core.predictor import (
    LLC_BOUND_MPKI,
    LlcMissPredictor,
    PredictionPoint,
    characterization_points,
)
from tests.test_arch_machine import make_profile


def separable_points():
    return [
        PredictionPoint("a", 1_000, 0.05),
        PredictionPoint("b", 5_000, 0.2),
        PredictionPoint("c", 20_000, 0.4),
        PredictionPoint("d", 100_000, 2.0),
        PredictionPoint("e", 250_000, 8.0),
        PredictionPoint("f", 460_000, 20.0),
    ]


class TestFitting:
    def test_threshold_between_classes(self):
        predictor = LlcMissPredictor().fit(separable_points())
        assert 20_000 < predictor.threshold_bytes < 100_000

    def test_requires_two_points(self):
        with pytest.raises(ValueError, match="two points"):
            LlcMissPredictor().fit([PredictionPoint("x", 1, 1.0)])

    def test_all_bound(self):
        predictor = LlcMissPredictor().fit([
            PredictionPoint("a", 100_000, 3.0),
            PredictionPoint("b", 200_000, 6.0),
        ])
        assert predictor.predict_llc_bound(100_000)

    def test_all_benign(self):
        predictor = LlcMissPredictor().fit([
            PredictionPoint("a", 1_000, 0.1),
            PredictionPoint("b", 2_000, 0.2),
        ])
        assert not predictor.predict_llc_bound(2_000)
        assert predictor.predict_llc_bound(100_000)

    def test_overlapping_classes_best_split(self):
        points = [
            PredictionPoint("a", 1_000, 0.1),
            PredictionPoint("b", 50_000, 2.0),   # bound
            PredictionPoint("c", 30_000, 0.5),   # benign, below b
            PredictionPoint("d", 40_000, 1.5),   # bound, overlaps c
            PredictionPoint("e", 100_000, 5.0),
        ]
        predictor = LlcMissPredictor().fit(points)
        # The best single split classifies at least 4 of 5 correctly.
        correct = sum(
            predictor.predict_llc_bound(p.modeled_data_bytes) == p.llc_bound
            for p in points
        )
        assert correct >= 4


class TestPrediction:
    @pytest.fixture
    def predictor(self):
        return LlcMissPredictor().fit(separable_points())

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LlcMissPredictor().predict_llc_bound(1000)

    def test_classification(self, predictor):
        assert predictor.predict_llc_bound(460_000)
        assert not predictor.predict_llc_bound(5_000)

    def test_mpki_linear_in_bound_region(self, predictor):
        # Points d, e, f are close to a line; prediction should track it.
        assert predictor.predict_mpki(460_000) == pytest.approx(20.0, rel=0.3)
        assert predictor.predict_mpki(100_000) < predictor.predict_mpki(250_000)

    def test_mpki_below_threshold_sub_one(self, predictor):
        assert predictor.predict_mpki(1_000) < LLC_BOUND_MPKI

    def test_r_squared_high_for_linear_data(self, predictor):
        assert predictor.r_squared(separable_points()) > 0.9


class TestCharacterizationIntegration:
    def test_points_from_machine_model(self):
        profiles = [
            make_profile("tiny", data_bytes=2_000, intermediate_kb=10),
            make_profile("huge", data_bytes=460_000, intermediate_kb=1100,
                         gather_kb=220),
        ]
        machine = MachineModel(SKYLAKE)
        points = characterization_points(profiles, machine)
        assert len(points) == 2
        assert points[0].llc_mpki < 1.0
        assert points[1].llc_mpki > 1.0

    def test_end_to_end_fit_predicts_new_size(self):
        profiles = [
            make_profile("a", data_bytes=2_000, intermediate_kb=10),
            make_profile("b", data_bytes=50_000, intermediate_kb=150),
            make_profile("c", data_bytes=250_000, intermediate_kb=600),
            make_profile("d", data_bytes=460_000, intermediate_kb=1100,
                         gather_kb=220),
        ]
        machine = MachineModel(SKYLAKE)
        predictor = LlcMissPredictor().fit(
            characterization_points(profiles, machine)
        )
        # A new job twice the size of the largest must classify as bound.
        assert predictor.predict_llc_bound(900_000)
        assert not predictor.predict_llc_bound(1_000)
