"""Network/disk chaos injection for the serving stack.

PR 2's :mod:`repro.serve.faults` scripts *process* faults (SIGKILL, hangs,
poisoned models) inside chain workers. This module extends the same design
— a JSON plan carried by an environment variable, cross-process
once-semantics via ``O_CREAT | O_EXCL`` sentinel files — to the *I/O
surface* of the service:

* ``enospc`` — raise ``OSError(ENOSPC)`` from a durability write. The
  ``target`` selects the path: ``filequeue`` (the gateway's JSONL job log),
  ``checkpoint`` (chain npz writes, inside worker processes), ``store``
  (result pickles), ``guide`` (GuideStore persistence).
* ``http_5xx`` — fail a gateway request with an injected 500.
* ``conn_drop`` — close the client's TCP connection mid-request without a
  response.
* ``delay`` — sleep ``seconds`` before handling a request (slow network).
* ``sse_truncate`` — cut an SSE stream after ``after_events`` events
  without a terminal event (a half-open stream, as a dying proxy produces).
* ``lease_expire`` — make a fleet replica observe its shard lease as lost
  at the next fence check (``target`` selects the shard index as a string;
  None matches any shard). Exercises the epoch-fencing takeover path of
  :mod:`repro.fleet.lease` without waiting out a real TTL.

HTTP-side kinds optionally restrict to one ``route`` template (as reported
in gateway telemetry, e.g. ``/v1/jobs/{id}/events``). Disk-side kinds fire
inside whichever process performs the write — the plan path travels through
``REPRO_CHAOS``, which worker processes inherit.

The hooks are near-zero-cost when no plan is installed: one ``os.environ``
lookup guarded by a cached miss. This module ships in the package, like
``faults``, so operators can rehearse overload/degradation against a live
service exactly the way the chaos suite does.
"""

from __future__ import annotations

import errno
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

#: Environment variable carrying the chaos-plan path into processes.
ENV_VAR = "REPRO_CHAOS"

CHAOS_KINDS = (
    "enospc", "http_5xx", "conn_drop", "delay", "sse_truncate",
    "lease_expire",
)

#: Valid ``target`` values for ``enospc`` faults.
DISK_TARGETS = ("filequeue", "checkpoint", "store", "guide")


@dataclass(frozen=True)
class ChaosFault:
    """One scripted network or disk failure."""

    kind: str
    #: ``enospc``: which durability path to fail. HTTP kinds: the route
    #: template to match (None matches every route).
    target: Optional[str] = None
    #: ``delay`` only: how long to stall the request.
    seconds: float = 0.5
    #: ``sse_truncate`` only: cut the stream after this many events.
    after_events: int = 1
    #: Fire at most this many times across all processes.
    max_fires: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; one of {CHAOS_KINDS}"
            )
        if self.kind == "enospc":
            if self.target not in DISK_TARGETS:
                raise ValueError(
                    f"enospc target {self.target!r}; one of {DISK_TARGETS}"
                )
        if self.max_fires < 1:
            raise ValueError("max_fires must be >= 1")


class ChaosInjector:
    """Evaluates a chaos plan inside one process."""

    def __init__(
        self, faults: List[ChaosFault], plan_path: Optional[str] = None
    ) -> None:
        self.faults = faults
        self.plan_path = plan_path

    @classmethod
    def from_env(cls) -> Optional["ChaosInjector"]:
        plan_path = os.environ.get(ENV_VAR)
        if not plan_path:
            return None
        try:
            return cls(read_plan(plan_path), plan_path)
        except (OSError, ValueError, json.JSONDecodeError):
            # A vanished or malformed plan disables injection rather than
            # breaking the service for a reason unrelated to the experiment.
            return None

    # -- cross-process once-semantics --------------------------------------

    def _claim(self, index: int, fault: ChaosFault) -> bool:
        """Atomically claim one firing of fault ``index``; False when spent."""
        if self.plan_path is None:
            return True
        for n in range(fault.max_fires):
            sentinel = f"{self.plan_path}.chaos-fired-{index}-{n}"
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    # -- injection points --------------------------------------------------

    def fail_write(self, target: str) -> None:
        """Raise ``OSError(ENOSPC)`` if an ``enospc`` fault claims this
        write; otherwise return normally."""
        for index, fault in enumerate(self.faults):
            if fault.kind != "enospc" or fault.target != target:
                continue
            if self._claim(index, fault):
                raise OSError(
                    errno.ENOSPC,
                    f"injected chaos: no space left on device ({target})",
                )

    def http_fault(self, route: str) -> Optional[ChaosFault]:
        """Claim at most one HTTP-side fault for this request."""
        for index, fault in enumerate(self.faults):
            if fault.kind not in ("http_5xx", "conn_drop", "delay"):
                continue
            if fault.target is not None and fault.target != route:
                continue
            if self._claim(index, fault):
                return fault
        return None

    def sse_fault(self) -> Optional[ChaosFault]:
        """Claim at most one ``sse_truncate`` fault for this stream."""
        for index, fault in enumerate(self.faults):
            if fault.kind != "sse_truncate":
                continue
            if self._claim(index, fault):
                return fault
        return None

    def lease_fault(self, shard: int) -> bool:
        """True when a ``lease_expire`` fault claims this shard's fence
        check — the holder must then behave exactly as if its lease had
        expired under it (raise, stop draining, let a successor claim).
        ``target`` restricts to one shard index (as a string); None
        matches any shard."""
        for index, fault in enumerate(self.faults):
            if fault.kind != "lease_expire":
                continue
            if fault.target is not None and fault.target != str(shard):
                continue
            if self._claim(index, fault):
                return True
        return False


# -- process-wide lookup -------------------------------------------------------

#: Cache keyed by the current plan path, so the common no-plan case is a
#: single dict/env lookup and an installed plan is parsed once per process.
_cache_path: Optional[str] = None
_cache_injector: Optional[ChaosInjector] = None


def active() -> Optional[ChaosInjector]:
    """The process's current injector (or None when chaos is off)."""
    global _cache_path, _cache_injector
    plan_path = os.environ.get(ENV_VAR)
    if plan_path != _cache_path:
        _cache_path = plan_path
        _cache_injector = ChaosInjector.from_env()
    return _cache_injector


def check_write(target: str) -> None:
    """Durability-write hook: no-op unless an installed plan fails it."""
    injector = active()
    if injector is not None:
        injector.fail_write(target)


# -- plan files ----------------------------------------------------------------


def write_plan(path: str, faults: List[ChaosFault]) -> str:
    payload = [
        {
            "kind": f.kind,
            "target": f.target,
            "seconds": f.seconds,
            "after_events": f.after_events,
            "max_fires": f.max_fires,
        }
        for f in faults
    ]
    Path(path).write_text(json.dumps(payload, indent=2))
    return path


def read_plan(path: str) -> List[ChaosFault]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"chaos plan {path} must be a JSON list")
    return [ChaosFault(**entry) for entry in payload]


@contextmanager
def installed(path: str) -> Iterator[str]:
    """Point ``REPRO_CHAOS`` at ``path`` for the duration.

    Must wrap worker-pool *startup* for ``enospc`` faults on the checkpoint
    path: workers read their own (inherited) environment.
    """
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(path)
    try:
        yield str(path)
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
