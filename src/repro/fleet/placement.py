"""Fleet-level placement: weighted consistent hashing over shards.

The paper's platform scheduler (Section V-B) answers *"which platform on
this box"* — its LLC-miss predictor sends LLC-bound workloads to the big-
cache part, everything else to the fast one. This module lifts the same
platform models one level up: a **fleet** of boxes, each a Table II
platform hosting some shards of the job queue, and a submission is routed
to a shard by consistent hashing over a ring whose **vnode counts are
weighted by the platform models' predicted throughput for that
workload family**. Heavy (LLC-bound) families therefore concentrate on
big-cache boxes, compute-bound families on high-frequency boxes, and the
weighting degrades gracefully to a static frequency x IPC proxy when no
profile is available (a producer that cannot afford to profile still
routes *consistently*, just less cleverly).

Consistency is the load-bearing property: the ring is a pure function of
(topology, weights), and a spec is hashed by its dedup key — so every
producer (gateway replica, ``repro submit``, the load harness) sends a
given spec to the same shard, where the shard queue's duplicate folding
and the shared result store make repeat traffic free and double execution
structurally impossible.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.machine import MachineModel
from repro.arch.platforms import PLATFORMS, Platform
from repro.arch.profile import WorkloadProfile

#: Virtual nodes granted to the heaviest box; lighter boxes get
#: proportionally fewer. Enough for an even key spread at small fleets.
VNODES = 64


@dataclass(frozen=True)
class FleetBox:
    """One box of the fleet: a replica on a Table II platform."""

    replica_id: str
    #: Key into :data:`repro.arch.platforms.PLATFORMS`.
    platform: str = "skylake"
    #: Gateway base URL, when known (used for wrong-replica redirects).
    url: Optional[str] = None
    #: Queue shards this box prefers to own (disjoint across boxes).
    shards: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.platform not in PLATFORMS:
            raise ValueError(
                f"unknown platform {self.platform!r}; "
                f"one of {sorted(PLATFORMS)}"
            )
        object.__setattr__(self, "shards", tuple(int(s) for s in self.shards))

    @property
    def platform_spec(self) -> Platform:
        return PLATFORMS[self.platform]

    def to_dict(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "platform": self.platform,
            "url": self.url,
            "shards": list(self.shards),
        }


@dataclass(frozen=True)
class FleetTopology:
    """The fleet map: which box hosts which shards.

    Shard assignments must partition ``range(n_shards)`` exactly — a shard
    with two preferred owners would make routing ambiguous, and an
    unassigned shard would be a black hole for every spec hashed onto it.
    (Lease *takeover* may move live ownership off this map when a box
    dies; the map is the routing preference, the lease files are the
    truth.)
    """

    n_shards: int
    boxes: Tuple[FleetBox, ...] = ()

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        object.__setattr__(self, "boxes", tuple(self.boxes))
        seen: Dict[int, str] = {}
        for box in self.boxes:
            for shard in box.shards:
                if shard < 0 or shard >= self.n_shards:
                    raise ValueError(
                        f"box {box.replica_id!r} claims shard {shard}, "
                        f"outside 0..{self.n_shards - 1}"
                    )
                if shard in seen:
                    raise ValueError(
                        f"shard {shard} assigned to both {seen[shard]!r} "
                        f"and {box.replica_id!r}"
                    )
                seen[shard] = box.replica_id
        missing = sorted(set(range(self.n_shards)) - set(seen))
        if self.boxes and missing:
            raise ValueError(f"shards {missing} assigned to no box")

    @classmethod
    def single_box(
        cls,
        n_shards: int,
        replica_id: str = "local",
        platform: str = "skylake",
        url: Optional[str] = None,
    ) -> "FleetTopology":
        """Every shard on one box — the CLI default when no fleet file is
        given (``repro serve --shards K`` on a single machine)."""
        return cls(
            n_shards=n_shards,
            boxes=(
                FleetBox(
                    replica_id=replica_id,
                    platform=platform,
                    url=url,
                    shards=tuple(range(n_shards)),
                ),
            ),
        )

    def box_for_shard(self, shard: int) -> Optional[FleetBox]:
        for box in self.boxes:
            if shard in box.shards:
                return box
        return None

    def box(self, replica_id: str) -> Optional[FleetBox]:
        for candidate in self.boxes:
            if candidate.replica_id == replica_id:
                return candidate
        return None

    def url_for(self, replica_id: Optional[str]) -> Optional[str]:
        if replica_id is None:
            return None
        box = self.box(replica_id)
        return box.url if box is not None else None

    def to_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "boxes": [box.to_dict() for box in self.boxes],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetTopology":
        return cls(
            n_shards=int(payload["n_shards"]),
            boxes=tuple(
                FleetBox(
                    replica_id=str(box["replica_id"]),
                    platform=box.get("platform", "skylake"),
                    url=box.get("url"),
                    shards=tuple(box.get("shards", ())),
                )
                for box in payload.get("boxes", ())
            ),
        )

    @classmethod
    def load(cls, path) -> "FleetTopology":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def _hash64(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class WeightedRing:
    """Consistent-hash ring over shard ids with per-shard weights.

    Each shard gets ``round(VNODES * weight / max_weight)`` (at least one)
    virtual points on a 64-bit ring; a key maps to the first vnode at or
    after its own hash. Determinism: the ring depends only on the
    (shard, weight) pairs, so independently constructed producers agree.
    """

    def __init__(self, weights: Dict[int, float], vnodes: int = VNODES) -> None:
        if not weights:
            raise ValueError("ring needs at least one shard")
        top = max(weights.values())
        if top <= 0:
            raise ValueError("shard weights must be positive")
        points: List[Tuple[int, int]] = []
        for shard, weight in sorted(weights.items()):
            count = max(1, round(vnodes * weight / top))
            for v in range(count):
                points.append((_hash64(f"shard-{shard}:vnode-{v}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def lookup(self, key: str) -> int:
        index = bisect.bisect_right(self._hashes, _hash64(key))
        if index == len(self._hashes):
            index = 0
        return self._shards[index]


@dataclass
class FleetPlacement:
    """Routes job specs to shards, weighted by the platform models.

    ``profiles`` maps workload name to a :class:`WorkloadProfile`; with a
    profile, a box's weight for that family is the inverse of the machine
    model's predicted per-iteration latency (the same analytical model the
    paper's scheduler uses, LLC pressure included) — so an LLC-bound
    family's ring tilts toward big-cache boxes. Without one, the static
    frequency x IPC proxy keeps routing deterministic and platform-aware,
    just family-blind.
    """

    topology: FleetTopology
    profiles: Dict[str, WorkloadProfile] = field(default_factory=dict)
    vnodes: int = VNODES
    #: Cores/chains assumed by the per-iteration latency prediction.
    n_cores: int = 4
    n_chains: int = 4

    def __post_init__(self) -> None:
        self._rings: Dict[Optional[str], WeightedRing] = {}

    # -- weights ---------------------------------------------------------------

    def box_weight(
        self, box: FleetBox, profile: Optional[WorkloadProfile]
    ) -> float:
        spec = box.platform_spec
        if profile is None:
            return spec.turbo_ghz * spec.base_ipc
        seconds = MachineModel(spec).iteration_seconds(
            profile,
            n_cores=min(self.n_cores, spec.cores),
            n_chains=self.n_chains,
        )
        return 1.0 / seconds if seconds > 0 else spec.turbo_ghz * spec.base_ipc

    def shard_weights(self, workload: Optional[str]) -> Dict[int, float]:
        """Per-shard ring weights for one workload family.

        A box's weight is split evenly across its shards, so a heavy box
        hosting two shards pulls the same total traffic as an equally
        heavy box hosting one.
        """
        profile = self.profiles.get(workload) if workload else None
        weights: Dict[int, float] = {}
        for box in self.topology.boxes:
            if not box.shards:
                continue
            weight = self.box_weight(box, profile) / len(box.shards)
            for shard in box.shards:
                weights[shard] = weight
        if not weights:
            # Topology without boxes (bare shard count): uniform ring.
            weights = {s: 1.0 for s in range(self.topology.n_shards)}
        return weights

    # -- routing ---------------------------------------------------------------

    def _ring(self, workload: Optional[str]) -> WeightedRing:
        key = workload if workload in self.profiles else None
        ring = self._rings.get(key)
        if ring is None:
            ring = WeightedRing(self.shard_weights(key), vnodes=self.vnodes)
            self._rings[key] = ring
        return ring

    def shard_for(self, spec) -> int:
        """The shard this :class:`~repro.serve.job.JobSpec` routes to.

        Hashed by the spec's dedup key: identical work from any producer
        lands on the same shard, where queue-level duplicate folding makes
        it run exactly once.
        """
        return self._ring(spec.workload).lookup(spec.key())

    def note_profile(self, profile: WorkloadProfile) -> None:
        """Teach the placement a freshly measured family profile; the
        family's ring is rebuilt on next use."""
        self.profiles[profile.name] = profile
        self._rings.pop(profile.name, None)

    def share_by_box(
        self, keys: Sequence[str], workload: Optional[str] = None
    ) -> Dict[str, float]:
        """Fraction of ``keys`` each box would receive (diagnostics)."""
        ring = self._ring(workload)
        counts: Dict[str, int] = {}
        for key in keys:
            shard = ring.lookup(key)
            box = self.topology.box_for_shard(shard)
            name = box.replica_id if box is not None else f"shard-{shard}"
            counts[name] = counts.get(name, 0) + 1
        total = max(1, len(keys))
        return {name: count / total for name, count in counts.items()}
