"""Figure 8 — overall speedup of the paper's techniques.

Convergence detection (Section VI-A) + platform scheduling (Section V-B)
against the naive baseline (full user budgets, 4 chains on 4 Broadwell
cores). The paper reports a 5.8x average speedup (6.2x for the energy
oracle); the reproduction should land in the same multi-x band, with every
workload at >= 1x and the biggest wins on the most over-budgeted workloads.
"""

import numpy as np
from conftest import print_table

from repro.core.pipeline import evaluate_overall


def test_fig8_overall_speedup(runner, benchmark):
    rows_data = benchmark.pedantic(
        lambda: evaluate_overall(runner), rounds=1, iterations=1
    )
    rows = [
        f"{r.name:<10s} {r.platform:>10s} {r.baseline_seconds:>9.1f} "
        f"{r.optimized_seconds:>9.1f} {r.speedup:>7.2f} "
        f"{str(r.converged_iteration):>6s} {100 * r.iterations_saved_fraction:>7.1f}"
        for r in rows_data
    ]
    header = (
        f"{'workload':<10s} {'platform':>10s} {'base s':>9s} {'opt s':>9s} "
        f"{'speedup':>7s} {'conv':>6s} {'saved%':>7s}"
    )
    average = float(np.mean([r.speedup for r in rows_data]))
    print_table(
        "Figure 8: overall speedup over the Broadwell baseline",
        header, rows,
        footer=f"average speedup: {average:.2f}x (paper: 5.8x)",
    )

    # Every workload at least breaks even.
    assert all(r.speedup >= 0.999 for r in rows_data)
    # Most workloads converge early enough for elision to fire.
    assert sum(r.converged_iteration is not None for r in rows_data) >= 8
    # Multi-x average: the same story as the paper's 5.8x.
    assert average > 2.5
    # LLC-bound workloads run on Broadwell, the rest on Skylake.
    placement = {r.name: r.platform for r in rows_data}
    for name in ("ad", "survival", "tickets"):
        assert placement[name] == "Broadwell"
    for name in ("votes", "ode", "disease"):
        assert placement[name] == "Skylake"
