"""Job model for the inference service.

A :class:`JobSpec` is the plain-data description of one sampling request —
everything needed to reproduce the run exactly, and nothing else. It travels
through JSON (the CLI submit queue) and across process boundaries (the worker
pool), and its :meth:`~JobSpec.key` is the dedup/result-store identity: two
specs with the same key are guaranteed to produce bit-identical draws, so the
service never runs the same work twice.

A :class:`Job` wraps a spec with service state: the QUEUED → RUNNING →
{CONVERGED, DONE, FAILED} lifecycle (with a RUNNING ⇄ RETRYING loop while
the retry policy has attempts left), the placement decision, and the
execution outcome.
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.amortize.policy import DEFAULT_MODE, Provenance, validate_mode
from repro.inference.engines import build_engine, engine_names
from repro.inference.results import SamplingResult


class JobState(str, Enum):
    """Lifecycle of a job inside the service."""

    QUEUED = "queued"
    RUNNING = "running"
    #: Stopped mid-run by the convergence monitor (iterations elided).
    CONVERGED = "converged"
    #: Ran its full budget (or was answered from the result store).
    DONE = "done"
    FAILED = "failed"
    #: Failed an attempt; waiting out its backoff before running again.
    RETRYING = "retrying"
    #: Hit its ``deadline_s`` before producing any kept draws (a 504-style
    #: terminal state — no result, but not a failure of the service).
    EXPIRED = "expired"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.CONVERGED, JobState.DONE, JobState.FAILED,
            JobState.EXPIRED,
        )


_TRANSITIONS = {
    JobState.QUEUED: {
        JobState.RUNNING, JobState.DONE, JobState.FAILED, JobState.EXPIRED,
    },
    JobState.RUNNING: {
        JobState.CONVERGED, JobState.DONE, JobState.FAILED, JobState.RETRYING,
        JobState.EXPIRED,
    },
    JobState.RETRYING: {JobState.RUNNING, JobState.FAILED, JobState.EXPIRED},
    JobState.CONVERGED: set(),
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.EXPIRED: set(),
}


@dataclass(frozen=True)
class JobSpec:
    """One sampling request. Frozen: the key must not drift after submit."""

    workload: str
    engine: str = "nuts"
    #: Serving tier: ``fast`` (amortized surrogate, unconditional),
    #: ``checked`` (surrogate iff PSIS k̂ passes, else escalate), or
    #: ``exact`` (full MCMC — the default and the pre-amortization path).
    mode: str = DEFAULT_MODE
    n_iterations: int = 400
    n_warmup: Optional[int] = None
    n_chains: int = 4
    seed: int = 0
    #: Dataset scale (1.0 full, 0.5/0.25 the paper's -h/-q variants).
    scale: float = 1.0
    #: Overrides the workload's default synthetic-dataset seed.
    dataset_seed: Optional[int] = None
    initial_jitter: float = 1.0
    #: Extra sampler constructor arguments (e.g. ``{"max_tree_depth": 8}``).
    engine_options: Dict[str, Any] = field(default_factory=dict)
    #: Higher runs first; ties are FIFO.
    priority: int = 0
    #: Monitor R-hat online and stop the job once converged.
    elide: bool = True
    rhat_threshold: float = 1.1
    #: Kept-draw interval between online R-hat evaluations.
    check_interval: int = 20
    #: Kept draws required before the first R-hat evaluation.
    min_kept: int = 40
    #: Iterations between chain checkpoints (0 disables checkpointing).
    checkpoint_interval: int = 0
    #: End-to-end deadline in seconds, measured from submission. ``None``
    #: (the default) never expires. An expired job is dropped before it
    #: starts, or — once past warmup — answered with the draws produced so
    #: far and a ``degraded: deadline`` provenance flag.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_iterations < 2:
            raise ValueError("n_iterations must be at least 2")
        if self.n_chains < 1:
            raise ValueError("n_chains must be at least 1")
        if self.n_warmup is not None and self.n_warmup >= self.n_iterations:
            raise ValueError("n_warmup must be smaller than n_iterations")
        if self.engine not in engine_names():
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"available: {', '.join(engine_names())}"
            )
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError("deadline_s must be positive")
        validate_mode(self.mode)

    @property
    def resolved_warmup(self) -> int:
        """Warmup iterations after applying the samplers' half-run default."""
        return (
            self.n_warmup if self.n_warmup is not None
            else self.n_iterations // 2
        )

    @property
    def budget_kept(self) -> int:
        """Post-warmup iterations the user asked for."""
        return self.n_iterations - self.resolved_warmup

    def build_sampler(self):
        return build_engine(self.engine, self.engine_options)

    def with_mode(self, mode: str) -> "JobSpec":
        """This spec at a different serving mode (same sampling identity).

        The escalation and dedup-inheritance paths use the ``exact`` twin:
        an escalated ``checked`` job produces draws bit-identical to what
        ``with_mode("exact")`` would have produced directly.
        """
        return self if mode == self.mode else replace(self, mode=mode)

    # -- identity --------------------------------------------------------------

    def key(self) -> str:
        """Stable digest of every field that determines the produced draws.

        ``priority`` and ``checkpoint_interval`` affect scheduling and
        fault-tolerance, never the draws, so they are excluded — a repeat
        submission at a different priority still dedupes.

        ``mode`` IS part of the key: a ``fast`` submission is answered by
        an amortized surrogate, so its stored result must never satisfy a
        later ``exact`` submission of the same sampling spec (and vice
        versa — the tiers produce different draws by design). The server
        still lets a stored *exact* result answer an amortized request,
        but that inheritance is an explicit upgrade in
        :meth:`~repro.serve.server.InferenceServer.submit`, not a key
        collision.
        """
        payload = asdict(self)
        payload["n_warmup"] = self.resolved_warmup
        payload.pop("priority")
        payload.pop("checkpoint_interval")
        # A deadline changes what the job may produce (partial draws), so
        # two submissions differing only in deadline must not dedupe onto
        # each other — ``deadline_s`` is part of the key when set. Dropping
        # it when unset keeps every pre-deadline key (and every stored
        # result) byte-identical to earlier releases.
        if payload.get("deadline_s") is None:
            payload.pop("deadline_s")
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # -- (de)serialization for the CLI submit queue ----------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass
class Placement:
    """The predictor-driven platform decision for one job."""

    platform: str
    predicted_llc_bound: bool
    predicted_mpki: float
    #: False when the fallback capacity rule placed the job because the
    #: predictor had fewer than two characterization points to fit on.
    predictor_fitted: bool = True


@dataclass
class ElisionSummary:
    """What the online monitor decided for one job."""

    budget_kept: int
    converged_kept: Optional[int]
    rhat_threshold: float
    checkpoints: List[int] = field(default_factory=list)
    rhat_trace: List[float] = field(default_factory=list)

    @property
    def elided(self) -> bool:
        return self.converged_kept is not None

    @property
    def iterations_saved_fraction(self) -> float:
        if not self.elided:
            return 0.0
        return 1.0 - self.converged_kept / self.budget_kept


class Job:
    """A spec plus its service-side state."""

    def __init__(self, spec: JobSpec, job_id: Optional[str] = None) -> None:
        self.spec = spec
        self.job_id = job_id or uuid.uuid4().hex[:12]
        self.state = JobState.QUEUED
        #: Monotonic submission instant — the deadline clock starts here.
        self.submitted_at = time.monotonic()
        self.result: Optional[SamplingResult] = None
        self.placement: Optional[Placement] = None
        self.elision: Optional[ElisionSummary] = None
        #: Which tier produced the result and why (set on every answer —
        #: surrogate, escalated, deduped, or plain exact).
        self.provenance: Optional[Provenance] = None
        self.error: Optional[str] = None
        #: Simulated seconds on the chosen/baseline platform (filled by the
        #: server when a scheduler is available).
        self.simulated_seconds: Optional[float] = None
        self.baseline_seconds: Optional[float] = None
        #: True when the result was answered from the store without sampling.
        self.deduped = False
        #: Execution attempts started (1 on the first run).
        self.attempts = 0
        #: Captured traceback of each failed attempt, oldest first.
        self.attempt_errors: List[str] = []
        #: Classification of the latest failure: "poison" (deterministic,
        #: will recur on replay) or "transient" (worker loss / timeout).
        self.failure_kind: Optional[str] = None
        #: True when an attempt was stopped by a graceful-drain halt (the
        #: halted attempt is not counted, but its checkpoints are resumable).
        self.was_halted = False

    @property
    def key(self) -> str:
        return self.spec.key()

    @property
    def deadline_at(self) -> Optional[float]:
        """Monotonic instant the job's deadline lapses (None: no deadline)."""
        if self.spec.deadline_s is None:
            return None
        return self.submitted_at + self.spec.deadline_s

    @property
    def expired(self) -> bool:
        """True once the deadline has lapsed (regardless of state)."""
        deadline_at = self.deadline_at
        return deadline_at is not None and time.monotonic() >= deadline_at

    def transition(self, new_state: JobState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal job transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def fail(self, error: str) -> None:
        self.error = error
        self.transition(JobState.FAILED)

    @property
    def speedup(self) -> Optional[float]:
        if not self.simulated_seconds or not self.baseline_seconds:
            return None
        return self.baseline_seconds / self.simulated_seconds

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, workload={self.spec.workload!r}, "
            f"state={self.state.value})"
        )
