"""ODE integration substrate for the ``ode`` workload.

The paper's ``ode`` workload fits the Friberg-Karlsson semi-mechanistic
myelosuppression model, a nonlinear ODE system, with Stan's ODE solver.
Stan differentiates through the solver with forward sensitivity analysis;
we do the same: :func:`rk4_solve` integrates the state, and
:func:`rk4_solve_with_sensitivities` additionally integrates the forward
sensitivity equations  dS/dt = J_y f * S + J_theta f, so the solution enters
the autodiff graph as a single custom node with an exact Jacobian
(:func:`ode_solution_op`).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tape import Var

# f(t, y, theta) -> dy/dt
RHS = Callable[[float, np.ndarray, np.ndarray], np.ndarray]
# jac_y(t, y, theta) -> (n_state, n_state); jac_theta -> (n_state, n_theta)
Jacobian = Callable[[float, np.ndarray, np.ndarray], np.ndarray]


def rk4_solve(
    rhs: RHS,
    y0: np.ndarray,
    t_eval: np.ndarray,
    theta: np.ndarray,
    steps_per_interval: int = 4,
) -> np.ndarray:
    """Classic fixed-step RK4 over the sorted output grid ``t_eval``.

    Returns an (n_times, n_state) array; ``t_eval[0]`` is the initial time
    and its row is ``y0``.
    """
    t_eval = np.asarray(t_eval, dtype=float)
    if np.any(np.diff(t_eval) <= 0):
        raise ValueError("t_eval must be strictly increasing")
    y = np.asarray(y0, dtype=float).copy()
    out = np.empty((t_eval.size, y.size))
    out[0] = y
    for i in range(1, t_eval.size):
        t0, t1 = t_eval[i - 1], t_eval[i]
        h = (t1 - t0) / steps_per_interval
        t = t0
        for _ in range(steps_per_interval):
            k1 = rhs(t, y, theta)
            k2 = rhs(t + h / 2, y + h / 2 * k1, theta)
            k3 = rhs(t + h / 2, y + h / 2 * k2, theta)
            k4 = rhs(t + h, y + h * k3, theta)
            y = y + h / 6 * (k1 + 2 * k2 + 2 * k3 + k4)
            t += h
        out[i] = y
    return out


def rk4_solve_with_sensitivities(
    rhs: RHS,
    jac_y: Jacobian,
    jac_theta: Jacobian,
    y0: np.ndarray,
    t_eval: np.ndarray,
    theta: np.ndarray,
    steps_per_interval: int = 4,
    s0: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integrate state and forward sensitivities together.

    The sensitivity S = dy/dtheta obeys  dS/dt = (df/dy) S + df/dtheta  with
    S(0) = s0 (zero when the initial conditions do not depend on theta;
    ``s0`` = dy0/dtheta otherwise). Both systems share one RK4 step so the
    sensitivities are those of the *discrete* integrator, which is exactly
    what reverse-mode needs.

    Returns ``(solution, sens)`` with shapes (n_times, n_state) and
    (n_times, n_state, n_theta).
    """
    t_eval = np.asarray(t_eval, dtype=float)
    if np.any(np.diff(t_eval) <= 0):
        raise ValueError("t_eval must be strictly increasing")
    theta = np.asarray(theta, dtype=float)
    y = np.asarray(y0, dtype=float).copy()
    n_state, n_theta = y.size, theta.size
    sens = (
        np.zeros((n_state, n_theta)) if s0 is None
        else np.asarray(s0, dtype=float).copy()
    )

    out_y = np.empty((t_eval.size, n_state))
    out_s = np.empty((t_eval.size, n_state, n_theta))
    out_y[0] = y
    out_s[0] = sens

    combined = getattr(rhs, "__self__", None)
    combined_fn = getattr(combined, "rhs_and_jacobians", None)

    def aug_rhs(t, y_aug):
        state = y_aug[:n_state]
        s = y_aug[n_state:].reshape(n_state, n_theta)
        if combined_fn is not None:
            dy, j_y, j_theta = combined_fn(t, state, theta)
        else:
            dy = rhs(t, state, theta)
            j_y = jac_y(t, state, theta)
            j_theta = jac_theta(t, state, theta)
        ds = j_y @ s + j_theta
        return np.concatenate([dy, ds.reshape(-1)])

    y_aug = np.concatenate([y, sens.reshape(-1)])
    for i in range(1, t_eval.size):
        t0, t1 = t_eval[i - 1], t_eval[i]
        h = (t1 - t0) / steps_per_interval
        t = t0
        for _ in range(steps_per_interval):
            k1 = aug_rhs(t, y_aug)
            k2 = aug_rhs(t + h / 2, y_aug + h / 2 * k1)
            k3 = aug_rhs(t + h / 2, y_aug + h / 2 * k2)
            k4 = aug_rhs(t + h, y_aug + h * k3)
            y_aug = y_aug + h / 6 * (k1 + 2 * k2 + 2 * k3 + k4)
            t += h
        out_y[i] = y_aug[:n_state]
        out_s[i] = y_aug[n_state:].reshape(n_state, n_theta)
    return out_y, out_s


def _ode_solution_fwd(v, static, out=None):
    rhs, jac_y, jac_theta, y0_spec, t_eval, steps_per_interval, s0 = static
    theta = v[0]
    # The initial state may depend on theta (steady-state compartments), so
    # it must be recomputed on every evaluation — a baked-in array would be
    # stale on compiled-tape replay.
    y0 = y0_spec(theta) if callable(y0_spec) else y0_spec
    solution, sens = rk4_solve_with_sensitivities(
        rhs, jac_y, jac_theta, y0, t_eval, theta,
        steps_per_interval=steps_per_interval, s0=s0,
    )
    return solution, sens


def _ode_solution_bwd(g, v, value, aux, static):
    # g has shape (n_times, n_state); aux = sens (n_times, n_state, n_theta).
    return (np.einsum("ts,tsp->p", g, aux),)


ops.register_kernel("ode_solution", _ode_solution_fwd, _ode_solution_bwd)


def ode_solution_op(
    rhs: RHS,
    jac_y: Jacobian,
    jac_theta: Jacobian,
    y0,
    t_eval: np.ndarray,
    theta_var: Var,
    steps_per_interval: int = 4,
    s0: np.ndarray | None = None,
) -> Var:
    """Differentiable ODE solution as one autodiff node.

    Forward: RK4 with sensitivities. Backward: contract the upstream adjoint
    with the per-time-point sensitivity matrices. ``y0`` is either a constant
    initial-state array or a callable ``theta -> y0`` when the initial state
    depends on the parameters; ``s0`` is dy0/dtheta in that case. Registered
    as a kernel so compiled tapes replay the solver exactly.
    """
    return ops.apply_kernel(
        "ode_solution",
        (theta_var,),
        static=(rhs, jac_y, jac_theta, y0, t_eval, steps_per_interval, s0),
        tag="ode_solution",
    )


# ---------------------------------------------------------------------------
# The Friberg-Karlsson semi-mechanistic myelosuppression model
# ---------------------------------------------------------------------------

class FribergKarlsson:
    """Friberg-Karlsson model of chemotherapy-induced neutropenia.

    States: drug amount in the central compartment, a proliferating cell
    pool, three maturation transit compartments, and circulating neutrophils.
    Parameters (theta): [CL, V, MTT, CIRC0, GAMMA, EMAX] — drug clearance,
    volume, mean transit time, baseline circulating cells, feedback exponent,
    and drug-effect slope.

    The right-hand side and both Jacobians are exact (hand-derived), so the
    sampler gets machine-precision gradients through the solver.
    """

    N_STATE = 6
    N_THETA = 6
    PARAM_NAMES = ("CL", "V", "MTT", "CIRC0", "GAMMA", "EMAX")

    def rhs(self, t: float, y: np.ndarray, theta: np.ndarray) -> np.ndarray:
        drug, prol, t1, t2, t3, circ = y
        cl, vol, mtt, circ0, gamma, emax = theta
        ktr = 4.0 / mtt
        conc = drug / vol
        edrug = min(emax * conc, 0.95)
        # Avoid the singularity when circ dips to ~0 during sampling.
        circ_safe = max(circ, 1e-6)
        prol_safe = max(prol, 1e-6)
        feedback = (circ0 / circ_safe) ** gamma
        return np.array([
            -cl / vol * drug,
            ktr * prol_safe * ((1.0 - edrug) * feedback - 1.0),
            ktr * (prol - t1),
            ktr * (t1 - t2),
            ktr * (t2 - t3),
            ktr * (t3 - circ),
        ])

    def jac_y(self, t: float, y: np.ndarray, theta: np.ndarray) -> np.ndarray:
        drug, prol, t1, t2, t3, circ = y
        cl, vol, mtt, circ0, gamma, emax = theta
        ktr = 4.0 / mtt
        conc = drug / vol
        edrug = emax * conc
        clipped = edrug >= 0.95
        circ_safe = max(circ, 1e-6)
        prol_safe = max(prol, 1e-6)
        feedback = (circ0 / circ_safe) ** gamma

        jac = np.zeros((6, 6))
        jac[0, 0] = -cl / vol
        # d prol'/d drug: prol' = ktr*prol*((1-edrug)*feedback - 1)
        if not clipped:
            jac[1, 0] = ktr * prol_safe * (-emax / vol) * feedback
        d_prol = ktr * (((1.0 - min(edrug, 0.95)) * feedback) - 1.0)
        jac[1, 1] = d_prol if prol > 1e-6 else 0.0
        dfeedback_dcirc = -gamma * feedback / circ_safe if circ > 1e-6 else 0.0
        jac[1, 5] = ktr * prol_safe * (1.0 - min(edrug, 0.95)) * dfeedback_dcirc
        jac[2, 1] = ktr
        jac[2, 2] = -ktr
        jac[3, 2] = ktr
        jac[3, 3] = -ktr
        jac[4, 3] = ktr
        jac[4, 4] = -ktr
        jac[5, 4] = ktr
        jac[5, 5] = -ktr
        return jac

    def jac_theta(self, t: float, y: np.ndarray, theta: np.ndarray) -> np.ndarray:
        drug, prol, t1, t2, t3, circ = y
        cl, vol, mtt, circ0, gamma, emax = theta
        ktr = 4.0 / mtt
        dktr_dmtt = -4.0 / mtt ** 2
        conc = drug / vol
        edrug = emax * conc
        clipped = edrug >= 0.95
        edrug_eff = min(edrug, 0.95)
        circ_safe = max(circ, 1e-6)
        prol_safe = max(prol, 1e-6)
        feedback = (circ0 / circ_safe) ** gamma
        log_ratio = np.log(max(circ0 / circ_safe, 1e-12))

        jac = np.zeros((6, 6))
        # Drug compartment: y0' = -cl/vol * drug
        jac[0, 0] = -drug / vol
        jac[0, 1] = cl * drug / vol ** 2
        # Proliferating pool: y1' = ktr*prol*((1-edrug)*feedback - 1)
        core = prol_safe * ((1.0 - edrug_eff) * feedback - 1.0)
        jac[1, 2] = dktr_dmtt * core
        jac[1, 3] = ktr * prol_safe * (1.0 - edrug_eff) * gamma * feedback / circ0
        jac[1, 4] = ktr * prol_safe * (1.0 - edrug_eff) * feedback * log_ratio
        if not clipped:
            jac[1, 1] = ktr * prol_safe * feedback * (emax * drug / vol ** 2)
            jac[1, 5] = ktr * prol_safe * feedback * (-conc)
        # Transit chain: all proportional to ktr.
        jac[2, 2] = dktr_dmtt * (prol - t1)
        jac[3, 2] = dktr_dmtt * (t1 - t2)
        jac[4, 2] = dktr_dmtt * (t2 - t3)
        jac[5, 2] = dktr_dmtt * (t3 - circ)
        return jac

    def rhs_and_jacobians(self, t: float, y: np.ndarray, theta: np.ndarray):
        """(dy/dt, df/dy, df/dtheta) in one pass, sharing subexpressions.

        Functionally identical to calling :meth:`rhs`, :meth:`jac_y` and
        :meth:`jac_theta` separately; used by the sensitivity integrator to
        cut Python-call overhead roughly threefold.
        """
        drug, prol, t1, t2, t3, circ = y
        cl, vol, mtt, circ0, gamma, emax = theta
        ktr = 4.0 / mtt
        dktr_dmtt = -4.0 / mtt ** 2
        conc = drug / vol
        edrug = emax * conc
        clipped = edrug >= 0.95
        edrug_eff = min(edrug, 0.95)
        circ_safe = max(circ, 1e-6)
        prol_safe = max(prol, 1e-6)
        feedback = (circ0 / circ_safe) ** gamma
        log_ratio = np.log(max(circ0 / circ_safe, 1e-12))

        dy = np.array([
            -cl / vol * drug,
            ktr * prol_safe * ((1.0 - edrug_eff) * feedback - 1.0),
            ktr * (prol - t1),
            ktr * (t1 - t2),
            ktr * (t2 - t3),
            ktr * (t3 - circ),
        ])

        j_y = np.zeros((6, 6))
        j_y[0, 0] = -cl / vol
        if not clipped:
            j_y[1, 0] = ktr * prol_safe * (-emax / vol) * feedback
        j_y[1, 1] = (
            ktr * ((1.0 - edrug_eff) * feedback - 1.0) if prol > 1e-6 else 0.0
        )
        dfeedback_dcirc = -gamma * feedback / circ_safe if circ > 1e-6 else 0.0
        j_y[1, 5] = ktr * prol_safe * (1.0 - edrug_eff) * dfeedback_dcirc
        j_y[2, 1] = ktr
        j_y[2, 2] = -ktr
        j_y[3, 2] = ktr
        j_y[3, 3] = -ktr
        j_y[4, 3] = ktr
        j_y[4, 4] = -ktr
        j_y[5, 4] = ktr
        j_y[5, 5] = -ktr

        j_t = np.zeros((6, 6))
        j_t[0, 0] = -drug / vol
        j_t[0, 1] = cl * drug / vol ** 2
        core = prol_safe * ((1.0 - edrug_eff) * feedback - 1.0)
        j_t[1, 2] = dktr_dmtt * core
        j_t[1, 3] = ktr * prol_safe * (1.0 - edrug_eff) * gamma * feedback / circ0
        j_t[1, 4] = ktr * prol_safe * (1.0 - edrug_eff) * feedback * log_ratio
        if not clipped:
            j_t[1, 1] = ktr * prol_safe * feedback * (emax * drug / vol ** 2)
            j_t[1, 5] = ktr * prol_safe * feedback * (-conc)
        j_t[2, 2] = dktr_dmtt * (prol - t1)
        j_t[3, 2] = dktr_dmtt * (t1 - t2)
        j_t[4, 2] = dktr_dmtt * (t2 - t3)
        j_t[5, 2] = dktr_dmtt * (t3 - circ)
        return dy, j_y, j_t

    def initial_state(self, dose: float, circ0: float) -> np.ndarray:
        """Steady-state cell compartments plus an initial drug bolus."""
        return np.array([dose, circ0, circ0, circ0, circ0, circ0])
