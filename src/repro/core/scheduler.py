"""Platform scheduling driven by LLC-miss prediction (paper Section V-B).

The two Table II platforms complement each other: Skylake has the higher
frequency, Broadwell the larger LLC. The scheduler sends jobs the predictor
flags as LLC-bound to the big-cache machine and everything else to the
fast machine; the paper reports a 1.16x average speedup over running the
whole suite on the Broadwell baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.machine import MachineModel
from repro.arch.platforms import BROADWELL, SKYLAKE, Platform
from repro.arch.profile import WorkloadProfile
from repro.core.predictor import LlcMissPredictor


@dataclass
class ScheduledJob:
    """One workload's placement decision and its simulated latencies."""

    name: str
    platform: Platform
    predicted_llc_bound: bool
    seconds: float
    baseline_seconds: float

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.seconds if self.seconds else float("inf")


class PlatformScheduler:
    """Assign Bayesian inference jobs to the platform that suits them."""

    def __init__(
        self,
        predictor: LlcMissPredictor,
        fast_platform: Platform = SKYLAKE,
        big_cache_platform: Platform = BROADWELL,
        baseline_platform: Optional[Platform] = None,
    ) -> None:
        self.predictor = predictor
        self.fast = fast_platform
        self.big_cache = big_cache_platform
        # The paper's baseline: the newer (2016) Broadwell server.
        self.baseline = baseline_platform or big_cache_platform
        self._machines: Dict[str, MachineModel] = {
            p.codename: MachineModel(p)
            for p in {fast_platform, big_cache_platform, self.baseline}
        }

    def choose_platform(self, profile: WorkloadProfile) -> Platform:
        """Section V-B placement rule: predicted-LLC-bound -> big cache."""
        if self.predictor.predict_llc_bound(profile.modeled_data_bytes):
            return self.big_cache
        return self.fast

    def schedule(
        self,
        profile: WorkloadProfile,
        chain_works: Sequence[float],
        n_cores: int = 4,
    ) -> ScheduledJob:
        """Place one job and simulate its latency against the baseline."""
        platform = self.choose_platform(profile)
        seconds = self._machines[platform.codename].job_seconds(
            profile, chain_works, n_cores=n_cores
        )
        baseline_seconds = self._machines[self.baseline.codename].job_seconds(
            profile, chain_works, n_cores=n_cores
        )
        return ScheduledJob(
            name=profile.name,
            platform=platform,
            predicted_llc_bound=self.predictor.predict_llc_bound(
                profile.modeled_data_bytes
            ),
            seconds=seconds,
            baseline_seconds=baseline_seconds,
        )

    def evaluate_suite(
        self,
        profiles: Sequence[WorkloadProfile],
        chain_works_by_name: Dict[str, Sequence[float]],
        n_cores: int = 4,
    ) -> List[ScheduledJob]:
        """Schedule every workload; used for the Figure 4 comparison."""
        return [
            self.schedule(profile, chain_works_by_name[profile.name], n_cores)
            for profile in profiles
        ]

    @staticmethod
    def average_speedup(jobs: Sequence[ScheduledJob]) -> float:
        """The paper's headline metric: mean per-workload speedup."""
        return float(np.mean([job.speedup for job in jobs]))
