"""Tests for the ChainResult/SamplingResult containers."""

import numpy as np
import pytest

from repro.inference.results import ChainResult, SamplingResult


def make_chain(n_total=20, n_warmup=8, dim=2, seed=0, work=3.0):
    rng = np.random.default_rng(seed)
    return ChainResult(
        samples=rng.normal(size=(n_total, dim)),
        logps=rng.normal(size=n_total),
        work_per_iteration=np.full(n_total, work),
        n_warmup=n_warmup,
        accept_rate=0.85,
        divergences=seed,  # distinct per chain for the aggregation test
    )


@pytest.fixture
def result():
    return SamplingResult(
        model_name="toy",
        chains=[make_chain(seed=s, work=3.0 + s) for s in range(3)],
        param_names=["a", "b"],
    )


class TestChainResult:
    def test_kept_excludes_warmup(self):
        chain = make_chain(n_total=20, n_warmup=8)
        assert chain.kept.shape == (12, 2)
        assert chain.n_iterations == 20

    def test_total_work(self):
        chain = make_chain(n_total=20, work=2.0)
        assert chain.total_work == 40.0

    def test_work_through_clamps(self):
        chain = make_chain(n_total=20, n_warmup=8, work=1.0)
        assert chain.work_through(5) == 13.0       # warmup + 5
        assert chain.work_through(100) == 20.0      # clamped to total


class TestSamplingResult:
    def test_shapes(self, result):
        assert result.n_chains == 3
        assert result.dim == 2
        assert result.n_kept == 12
        assert result.stacked().shape == (3, 12, 2)
        assert result.pooled().shape == (36, 2)

    def test_second_half_only(self, result):
        assert result.stacked(second_half_only=True).shape == (3, 6, 2)

    def test_work_aggregates(self, result):
        assert result.total_work == (3 + 4 + 5) * 20
        assert result.max_chain_work == 100.0
        assert np.allclose(result.chain_work, [60.0, 80.0, 100.0])

    def test_divergences_summed(self, result):
        assert result.divergences == 0 + 1 + 2

    def test_accept_rates(self, result):
        assert np.allclose(result.accept_rates, 0.85)

    def test_constrained_maps_draws(self, result):
        class FakeModel:
            params = []

            def __init__(self):
                from repro.models import ParameterSpec
                self.params = [ParameterSpec("a", 1), ParameterSpec("b", 1)]

            def constrain(self, x):
                return {"a": np.array([x[0]]), "b": np.array([x[1] * 2])}

        constrained = result.constrained(FakeModel())
        assert constrained["a"].shape == (36, 1)
        assert np.allclose(constrained["b"], result.pooled()[:, 1:2] * 2)

    def test_repr(self, result):
        assert "toy" in repr(result)
