"""``12cities`` — does lowering speed limits save pedestrian lives?

Hierarchical Poisson regression of monthly pedestrian fatality counts on a
speed-limit-change indicator, with city effects and a seasonal covariate
(Auerbach, Eshleman & Trangucci 2017; data originally from FARS).
"""

from __future__ import annotations

from typing import Dict

from repro.autodiff import ops
from repro.autodiff.tape import Var
from repro.models import BayesianModel, ParameterSpec
from repro.models import distributions as dist
from repro.models.transforms import Positive
from repro.suite.data import make_twelve_cities


class TwelveCities(BayesianModel):
    name = "12cities"
    model_family = "Poisson Regression"
    application = "Does lowering speed limits save pedestrian lives?"
    reference = "Auerbach et al. 2017 (arXiv:1705.10876); data: FARS"
    default_iterations = 2000
    default_warmup = 1000
    default_chains = 4

    def __init__(self, scale: float = 1.0, seed: int = 101) -> None:
        super().__init__()
        data = make_twelve_cities(scale=scale, seed=seed)
        self.truth = data.pop("truth")
        self.n_cities = data.pop("n_cities")
        self.add_data(**data)

    @property
    def params(self):
        return [
            ParameterSpec("intercept", 1, init=1.0),
            ParameterSpec("city_raw", self.n_cities, init=0.0),
            ParameterSpec("sigma_city", 1, transform=Positive(), init=0.5),
            ParameterSpec("beta_limit", 1, init=0.0),
            ParameterSpec("beta_season", 1, init=0.0),
        ]

    def log_joint(self, p: Dict[str, Var]) -> Var:
        deaths = self.data("deaths")
        city = self.data("city")
        # Non-centered city effects: effect = sigma_city * raw.
        log_rate = (
            p["intercept"]
            + p["sigma_city"] * ops.take(p["city_raw"], city)
            + p["beta_limit"] * ops.constant(self.data("lowered"))
            + p["beta_season"] * ops.constant(self.data("season"))
            + ops.constant(self.data("log_exposure"))
        )
        return (
            dist.poisson_log_lpmf(deaths, log_rate)
            + dist.normal_lpdf(p["city_raw"], 0.0, 1.0)
            + dist.half_cauchy_lpdf(p["sigma_city"], 1.0)
            + dist.normal_lpdf(p["intercept"], 0.0, 5.0)
            + dist.normal_lpdf(p["beta_limit"], 0.0, 2.0)
            + dist.normal_lpdf(p["beta_season"], 0.0, 2.0)
        )
