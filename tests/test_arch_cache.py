"""Tests for the set-associative cache simulator and trace generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import SetAssociativeCache
from repro.arch.trace import (
    analytical_miss_rate,
    chain_working_set_lines,
    interleaved_chain_trace,
    measure_llc_miss_rate,
)


class TestCacheGeometry:
    def test_sets_computed(self):
        cache = SetAssociativeCache(1024, line_bytes=64, ways=4)
        assert cache.n_sets == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="divisible"):
            SetAssociativeCache(1000, line_bytes=64, ways=4)
        with pytest.raises(ValueError, match="positive"):
            SetAssociativeCache(0)

    def test_repr(self):
        assert "4-way" in repr(SetAssociativeCache(1024, 64, 4))


class TestCacheBehavior:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache(4096)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)       # same line
        assert not cache.access(64)   # next line

    def test_lru_eviction_order(self):
        # Direct-mapped... rather: 2-way, 1 set: capacity 2 lines.
        cache = SetAssociativeCache(128, line_bytes=64, ways=2)
        cache.access_line(0)
        cache.access_line(1)
        cache.access_line(0)      # make line 0 MRU
        cache.access_line(2)      # evicts line 1 (LRU)
        assert cache.access_line(0)
        assert not cache.access_line(1)

    def test_working_set_within_capacity_all_hits(self):
        cache = SetAssociativeCache(64 * 1024)
        lines = list(range(512))  # 32 KB working set
        cache.run_trace(lines)
        stats = cache.run_trace(lines * 3)
        assert stats.miss_rate == 0.0

    def test_cyclic_sweep_beyond_capacity_thrashes(self):
        cache = SetAssociativeCache(8 * 1024, ways=4)  # 128 lines
        lines = list(range(256))  # 2x capacity
        cache.run_trace(lines)
        stats = cache.run_trace(lines * 3)
        assert stats.miss_rate > 0.9  # LRU worst case on cyclic sweeps

    def test_resident_lines_bounded(self):
        cache = SetAssociativeCache(4096, ways=4)
        for line in range(1000):
            cache.access_line(line)
        assert cache.resident_lines() <= 64

    def test_flush(self):
        cache = SetAssociativeCache(4096)
        cache.access_line(0)
        cache.flush()
        assert not cache.access_line(0)

    def test_stats_accumulate(self):
        cache = SetAssociativeCache(4096)
        cache.access_line(0)
        cache.access_line(0)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=15, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, n_lines):
        cache = SetAssociativeCache(2048, ways=2)
        rng = np.random.default_rng(0)
        cache.run_trace(rng.integers(0, n_lines, size=200))
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


class TestTraces:
    def test_chain_working_sets_disjoint(self):
        a = chain_working_set_lines(64 * 1024, 0)
        b = chain_working_set_lines(64 * 1024, 1)
        assert len(np.intersect1d(a, b)) == 0

    def test_trace_length_scales_with_sweeps(self):
        short = list(interleaved_chain_trace(8 * 1024, 2, sweeps=1))
        longer = list(interleaved_chain_trace(8 * 1024, 2, sweeps=3))
        assert len(longer) > 2 * len(short)

    def test_fitting_working_set_low_miss_rate(self):
        rate = measure_llc_miss_rate(
            working_set_bytes=64 * 1024, n_active_chains=2,
            llc_bytes=1024 * 1024, sweeps=2,
        )
        assert rate < 0.12

    def test_overflowing_working_set_high_miss_rate(self):
        rate = measure_llc_miss_rate(
            working_set_bytes=512 * 1024, n_active_chains=4,
            llc_bytes=512 * 1024, sweeps=2,
        )
        assert rate > 0.5

    def test_more_chains_increase_miss_rate(self):
        one = measure_llc_miss_rate(256 * 1024, 1, 512 * 1024, sweeps=2)
        four = measure_llc_miss_rate(256 * 1024, 4, 512 * 1024, sweeps=2)
        assert four > one

    def test_analytical_matches_simulated_shape(self):
        """The closed-form curve must agree with the simulator about which
        side of capacity a configuration is on."""
        llc = 1024 * 1024
        for ws, chains in [(64 * 1024, 2), (256 * 1024, 2), (512 * 1024, 4)]:
            simulated = measure_llc_miss_rate(ws, chains, llc, sweeps=2)
            analytical = analytical_miss_rate(ws, chains, llc)
            fits = ws * chains <= 0.9 * llc
            if fits:
                assert analytical == 0.0
                assert simulated < 0.15
            else:
                assert analytical > 0.2
                assert simulated > 0.2

    def test_analytical_zero_for_empty(self):
        assert analytical_miss_rate(0, 4, 1024) == 0.0
