"""Section VI-A overhead analysis — the cost of runtime convergence
detection.

The paper measures the worst case (2000 iterations, half kept for inference,
4 chains) at 0.06 s on one Skylake core and calls it negligible. This bench
times exactly that computation; pytest-benchmark reports the distribution.
"""

import numpy as np

from repro.diagnostics.rhat import max_rhat
from repro.core.elision import OnlineRhat

N_CHAINS = 4
N_KEPT = 1000   # half of the paper's worst-case 2000 iterations
DIM = 16        # a typical BayesSuite posterior dimension


def test_rhat_worst_case_overhead(benchmark):
    rng = np.random.default_rng(0)
    draws = rng.normal(size=(N_CHAINS, N_KEPT, DIM))
    result = benchmark(max_rhat, draws)
    assert result < 1.1
    # The whole point: the check is a negligible fraction of a sampling run.
    assert benchmark.stats["mean"] < 0.25


def test_online_rhat_incremental_overhead(benchmark):
    rng = np.random.default_rng(1)
    online = OnlineRhat(N_CHAINS, DIM)
    for _ in range(N_KEPT):
        for chain in range(N_CHAINS):
            online.update(chain, rng.normal(size=DIM))

    value = benchmark(online.rhat)
    assert value < 1.1
    assert benchmark.stats["mean"] < 0.5
