"""Figure 3 — LLC miss-rate prediction from modeled data size.

Each workload contributes three points (full, half ``-h`` and quarter ``-q``
datasets, as in the paper). Shapes to hold: modeled data size is positively
correlated with the 4-core LLC miss rate; above 1 MPKI the relationship is
accurately linear; tickets, survival, and ad are identifiable by a single
data-size threshold.
"""

import numpy as np
from conftest import print_table

from repro.arch.machine import MachineModel
from repro.arch.platforms import SKYLAKE
from repro.core.predictor import (
    LlcMissPredictor,
    PredictionPoint,
    characterization_points,
)
from repro.suite import workload_names

SCALES = {"": 1.0, "-h": 0.5, "-q": 0.25}


def build_fig3(runner):
    machine = MachineModel(SKYLAKE)
    points = []
    for name in workload_names():
        for suffix, scale in SCALES.items():
            profile = runner.profile(name, scale=scale)
            counters = machine.counters(profile, n_cores=4, n_chains=4)
            points.append(
                PredictionPoint(
                    name=name + suffix,
                    modeled_data_bytes=profile.modeled_data_bytes,
                    llc_mpki=counters.llc_mpki,
                )
            )
    predictor = LlcMissPredictor().fit(points)
    return points, predictor


def test_fig3_llc_prediction(runner, benchmark):
    points, predictor = benchmark.pedantic(
        build_fig3, args=(runner,), rounds=1, iterations=1
    )
    rows = [
        f"{p.name:<12s} {p.modeled_data_bytes:>9.0f} {p.llc_mpki:>8.2f} "
        f"{'bound' if p.llc_bound else '-':>6s} "
        f"{predictor.predict_mpki(p.modeled_data_bytes):>8.2f}"
        for p in sorted(points, key=lambda p: p.modeled_data_bytes)
    ]
    header = (
        f"{'point':<12s} {'data B':>9s} {'MPKI':>8s} {'class':>6s} {'pred':>8s}"
    )
    print_table(
        "Figure 3: LLC miss rate vs modeled data size (full/-h/-q)",
        header, rows,
        footer=f"threshold = {predictor.threshold_bytes:,.0f} bytes, "
               f"R^2 (>=1 MPKI region) = {predictor.r_squared(points):.3f}",
    )

    # Positive correlation between data size and miss rate.
    sizes = np.array([p.modeled_data_bytes for p in points])
    mpkis = np.array([p.llc_mpki for p in points])
    assert np.corrcoef(sizes, mpkis)[0, 1] > 0.6

    # The paper's three LLC-bound workloads are classified by the threshold.
    for name in ("tickets", "survival", "ad"):
        profile = runner.profile(name)
        assert predictor.predict_llc_bound(profile.modeled_data_bytes), name
    for name in ("votes", "ode", "disease", "racial", "butterfly", "12cities"):
        profile = runner.profile(name)
        assert not predictor.predict_llc_bound(profile.modeled_data_bytes), name

    # Accurate linear prediction in the >= 1 MPKI region.
    assert predictor.r_squared(points) > 0.75
