"""KL-divergence estimators between posterior sample sets.

The paper scores intermediate inference results by the KL divergence between
the current posterior estimate and a "ground truth" posterior obtained with a
doubled iteration budget (Section VI-A, citing Hershey & Olsen's Gaussian
approximations). Two estimators are provided:

* :func:`gaussian_kl` — moment-match both sample sets with multivariate
  Gaussians and use the closed form (robust, the default, and what the
  figure-5 bench uses);
* :func:`histogram_kl` — average of per-marginal histogram KLs
  (nonparametric sanity check).
"""

from __future__ import annotations

import numpy as np


def _fit_gaussian(samples: np.ndarray, jitter: float = 1e-9):
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    if samples.shape[0] < samples.shape[1] + 2:
        raise ValueError(
            f"need more samples ({samples.shape[0]}) than dimensions "
            f"({samples.shape[1]}) to fit a Gaussian"
        )
    mu = samples.mean(axis=0)
    cov = np.cov(samples, rowvar=False)
    cov = np.atleast_2d(cov)
    cov += jitter * np.trace(cov) / cov.shape[0] * np.eye(cov.shape[0])
    return mu, cov


def gaussian_kl(samples_p: np.ndarray, samples_q: np.ndarray) -> float:
    """KL(P || Q) between Gaussian fits of two (n, dim) sample sets."""
    mu_p, cov_p = _fit_gaussian(samples_p)
    mu_q, cov_q = _fit_gaussian(samples_q)
    dim = mu_p.shape[0]

    chol_q = np.linalg.cholesky(cov_q)
    solve_q = lambda rhs: np.linalg.solve(chol_q.T, np.linalg.solve(chol_q, rhs))

    diff = mu_q - mu_p
    trace_term = np.trace(solve_q(cov_p))
    quad_term = float(diff @ solve_q(diff))
    logdet_q = 2.0 * np.log(np.diag(chol_q)).sum()
    sign_p, logdet_p = np.linalg.slogdet(cov_p)
    if sign_p <= 0:
        raise ValueError("sample covariance of P is not positive definite")

    kl = 0.5 * (trace_term + quad_term - dim + logdet_q - logdet_p)
    return float(max(kl, 0.0))


def histogram_kl(
    samples_p: np.ndarray,
    samples_q: np.ndarray,
    bins: int = 30,
    epsilon: float = 1e-10,
) -> float:
    """Mean of per-dimension histogram KLs, KL(P || Q).

    Bins are chosen from the pooled range so both sample sets share support.
    """
    samples_p = np.atleast_2d(np.asarray(samples_p, dtype=float))
    samples_q = np.atleast_2d(np.asarray(samples_q, dtype=float))
    if samples_p.shape[1] != samples_q.shape[1]:
        raise ValueError("sample sets must have the same dimensionality")

    total = 0.0
    dim = samples_p.shape[1]
    for k in range(dim):
        lo = min(samples_p[:, k].min(), samples_q[:, k].min())
        hi = max(samples_p[:, k].max(), samples_q[:, k].max())
        if hi <= lo:
            continue
        edges = np.linspace(lo, hi, bins + 1)
        p_hist, _ = np.histogram(samples_p[:, k], bins=edges)
        q_hist, _ = np.histogram(samples_q[:, k], bins=edges)
        p = p_hist / p_hist.sum() + epsilon
        q = q_hist / q_hist.sum() + epsilon
        p /= p.sum()
        q /= q.sum()
        total += float(np.sum(p * np.log(p / q)))
    return total / dim


def kl_divergence(
    samples_p: np.ndarray, samples_q: np.ndarray, method: str = "gaussian"
) -> float:
    """Dispatch between the Gaussian and histogram estimators."""
    if method == "gaussian":
        return gaussian_kl(samples_p, samples_q)
    if method == "histogram":
        return histogram_kl(samples_p, samples_q)
    raise ValueError(f"unknown KL method {method!r}; use 'gaussian' or 'histogram'")
