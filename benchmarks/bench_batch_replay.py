"""Batched replay speedup — solo tape replays vs one cross-chain batch.

For every BayesSuite workload this measures per-iteration gradient
throughput two ways at the same ``B`` chain positions:

* **solo** — ``B`` sequential ``CompiledTape`` replays per round, the
  per-chain execution a worker performs without ``repro.batch``;
* **batched** — one :class:`repro.batch.engine.BatchedTape` evaluation per
  round, replaying all ``B`` lanes through vectorized instructions.

Results are asserted bit-identical lane by lane before any timing, so the
speedup column never trades correctness for throughput. The headline
number backs the PR's claim: **>=2x per-iteration throughput over the solo
compiled-tape path on gradient-bound workloads**.

Three entry points:

* standalone — ``python benchmarks/bench_batch_replay.py`` prints a table
  and writes ``BENCH_batch_replay.json`` next to this file;
* ``--check`` — compares fresh measurements against the committed baseline
  JSON and exits non-zero if any workload's speedup fell below
  ``REPRO_BATCH_REGRESSION`` (default 0.9) of its baseline, or if fewer
  than two gradient-bound workloads hold >=2x — the nightly CI gate;
* pytest — a smoke test asserting bit-identity everywhere and >=2x on at
  least two gradient-bound workloads.

Knobs: ``REPRO_BENCH_SCALE`` (workload scale, default 0.5),
``REPRO_BENCH_CALLS`` (rounds per timing, default 100),
``REPRO_BENCH_REPEATS`` (best-of repeats, default 3),
``REPRO_BENCH_WIDTH`` (chains per batch, default 8).
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.autodiff import compile as tape_compile
from repro.batch.engine import BatchedEvaluator
from repro.suite import load_workload
from repro.suite.registry import workload_names

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
CALLS = int(os.environ.get("REPRO_BENCH_CALLS", "100"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
WIDTH = int(os.environ.get("REPRO_BENCH_WIDTH", "8"))
REGRESSION_FLOOR = float(os.environ.get("REPRO_BATCH_REGRESSION", "0.9"))

BASELINE_PATH = Path(__file__).parent / "BENCH_batch_replay.json"

#: Same set as bench_compiled_tape.py: workloads whose evaluation cost is
#: dominated by many small kernels (per-instruction dispatch overhead)
#: rather than one heavyweight kernel. Batching amortizes the dispatch
#: across lanes, so these carry the >=2x acceptance bar; a workload built
#: around a big BLAS or solver call (``ode``, large-design regressions)
#: honestly shows less, because numpy already saturates on a single lane.
GRADIENT_BOUND = [
    "12cities", "ad", "memory", "votes", "tickets",
    "disease", "racial", "butterfly", "survival",
]


def _positions(model, width: int) -> list:
    rng = np.random.default_rng(0)
    return [
        model.initial_position(rng) + 0.1 * rng.standard_normal(model.dim)
        for _ in range(width)
    ]


def measure_workload(name: str) -> dict:
    model = load_workload(name, scale=SCALE)
    xs = _positions(model, WIDTH)

    with tape_compile.override(True):
        solo = model.compiled_logp_and_grad
        solo(xs[0])  # record
        for x in xs:
            solo(x)  # drain pending validation replays

        evaluator = BatchedEvaluator(model, WIDTH)
        batch_xs = {i: x for i, x in enumerate(xs)}
        # Drive acquisition + calibration + validation to the stable state.
        for _ in range(8):
            results = evaluator.evaluate(batch_xs)
            if evaluator.stable:
                break
        engine = evaluator.engine

        solo_results = [solo(x) for x in xs]
        identical = engine is not None and all(
            results[i][0] == solo_results[i][0]
            and np.array_equal(results[i][1], solo_results[i][1])
            for i in range(WIDTH)
        )

        # Per-round timings at matched positions: B solo replays vs one
        # batched evaluation.
        best_solo = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(CALLS):
                for x in xs:
                    solo(x)
            best_solo = min(best_solo, time.perf_counter() - start)

        best_batch = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(CALLS):
                evaluator.evaluate(batch_xs)
            best_batch = min(best_batch, time.perf_counter() - start)

    return {
        "workload": name,
        "dim": int(model.dim),
        "width": WIDTH,
        "solo_us": 1e6 * best_solo / (CALLS * WIDTH),
        "batched_us": 1e6 * best_batch / (CALLS * WIDTH),
        "speedup": best_solo / best_batch,
        "identical": bool(identical),
        "vector_instructions": engine.n_vector if engine else 0,
        "lane_instructions": engine.n_lane if engine else 0,
        "demotions": engine.demotions if engine else 0,
    }


def measure_all() -> list:
    return [measure_workload(name) for name in workload_names()]


def report(rows: list) -> None:
    print(f"{'workload':12s} {'dim':>5s} {'solo us':>9s} {'batch us':>9s} "
          f"{'speedup':>8s} {'vec/lane':>9s}  identical")
    for row in rows:
        mix = f"{row['vector_instructions']}/{row['lane_instructions']}"
        print(
            f"{row['workload']:12s} {row['dim']:5d} "
            f"{row['solo_us']:9.1f} {row['batched_us']:9.1f} "
            f"{row['speedup']:7.2f}x {mix:>9s}  {row['identical']}"
        )
    bound = [r for r in rows if r["workload"] in GRADIENT_BOUND]
    at_2x = sum(r["speedup"] >= 2.0 for r in bound)
    print(f"gradient-bound workloads at >=2x: {at_2x}/{len(bound)}")


def write_baseline(rows: list, path: Path = BASELINE_PATH) -> None:
    payload = {
        "scale": SCALE,
        "calls": CALLS,
        "width": WIDTH,
        "workloads": {
            row["workload"]: {
                "speedup": round(row["speedup"], 3),
                "solo_us": round(row["solo_us"], 1),
                "batched_us": round(row["batched_us"], 1),
            }
            for row in rows
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def check_against_baseline(rows: list, path: Path = BASELINE_PATH) -> int:
    """0 when every workload holds >= REGRESSION_FLOOR of its baseline."""
    baseline = json.loads(path.read_text())["workloads"]
    failures = []
    for row in rows:
        base = baseline.get(row["workload"])
        if base is None:
            continue
        floor = REGRESSION_FLOOR * base["speedup"]
        status = "ok" if row["speedup"] >= floor else "REGRESSED"
        print(
            f"{row['workload']:12s} speedup {row['speedup']:5.2f}x "
            f"(baseline {base['speedup']:.2f}x, floor {floor:.2f}x) {status}"
        )
        if row["speedup"] < floor:
            failures.append(row["workload"])
        if not row["identical"]:
            print(f"{row['workload']:12s} NOT BIT-IDENTICAL")
            failures.append(row["workload"])
    bound = [r for r in rows if r["workload"] in GRADIENT_BOUND]
    at_2x = sum(r["speedup"] >= 2.0 for r in bound)
    if at_2x < 2:
        print(f"only {at_2x} gradient-bound workloads at >=2x (need 2)")
        failures.append("at_2x_floor")
    if failures:
        print(f"perf regression: {sorted(set(failures))}")
        return 1
    print("batched-replay speedups hold against the baseline")
    return 0


def test_batch_replay_speedup():
    """Pytest entry: bit-identity everywhere, >=2x on two gradient-bound."""
    rows = measure_all()
    report(rows)
    assert all(row["identical"] for row in rows)
    bound = [r for r in rows if r["workload"] in GRADIENT_BOUND]
    at_2x = sum(r["speedup"] >= 2.0 for r in bound)
    assert at_2x >= 2, (
        f"only {at_2x} gradient-bound workloads reached 2x batched speedup"
    )


if __name__ == "__main__":
    measured = measure_all()
    report(measured)
    if "--check" in sys.argv:
        sys.exit(check_against_baseline(measured))
    write_baseline(measured)
    sys.exit(0 if all(row["identical"] for row in measured) else 1)
