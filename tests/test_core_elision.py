"""Tests for runtime convergence detection (Section VI-A)."""

import numpy as np
import pytest

from repro.core.elision import ConvergenceDetector, ElisionReport, OnlineRhat
from repro.inference.results import ChainResult, SamplingResult


def synthetic_result(
    n_chains=4,
    n_kept=400,
    n_warmup=100,
    converge_after=120,
    dim=2,
    seed=0,
    work_scale=30.0,
):
    """Chains that start dispersed and merge after ``converge_after`` kept
    iterations — a controllable stand-in for a real sampler run."""
    rng = np.random.default_rng(seed)
    total = n_warmup + n_kept
    chains = []
    for c in range(n_chains):
        offsets = np.zeros((total, dim))
        # Offset decays linearly to zero at (warmup + converge_after).
        merge_point = n_warmup + converge_after
        decay = np.clip(1.0 - np.arange(total) / max(merge_point, 1), 0.0, 1.0)
        offsets += decay[:, None] * (c + 1) * 3.0
        samples = rng.normal(size=(total, dim)) + offsets
        work = np.full(total, work_scale) + rng.integers(0, 10, size=total)
        chains.append(
            ChainResult(
                samples=samples,
                logps=np.zeros(total),
                work_per_iteration=work.astype(float),
                n_warmup=n_warmup,
                accept_rate=0.9,
            )
        )
    return SamplingResult(model_name="synthetic", chains=chains)


class TestOnlineRhat:
    def test_requires_two_chains(self):
        with pytest.raises(ValueError, match="2 chains"):
            OnlineRhat(1, 2)

    def test_infinite_before_enough_draws(self):
        online = OnlineRhat(2, 1)
        online.update(0, np.array([1.0]))
        online.update(1, np.array([1.0]))
        assert online.rhat() == float("inf")

    def test_detects_convergence_of_identical_distributions(self):
        rng = np.random.default_rng(1)
        online = OnlineRhat(4, 2)
        for _ in range(300):
            for c in range(4):
                online.update(c, rng.normal(size=2))
        assert online.rhat() < 1.1
        assert online.converged()

    def test_detects_divergence_of_shifted_chains(self):
        rng = np.random.default_rng(2)
        online = OnlineRhat(2, 1)
        for _ in range(200):
            online.update(0, rng.normal(size=1))
            online.update(1, rng.normal(size=1) + 5.0)
        assert online.rhat() > 1.5
        assert not online.converged()

    def test_n_draws_is_minimum_across_chains(self):
        online = OnlineRhat(2, 1)
        online.update(0, np.zeros(1))
        online.update(0, np.zeros(1))
        online.update(1, np.zeros(1))
        assert online.n_draws == 1


class TestConvergenceDetector:
    def test_detects_after_merge_point(self):
        result = synthetic_result(converge_after=120)
        report = ConvergenceDetector(check_interval=20).detect(result)
        assert report.converged
        # Detection cannot precede the merge; should happen not too long after.
        assert 120 <= report.converged_iteration <= 280

    def test_never_converges_when_chains_disagree(self):
        result = synthetic_result(converge_after=10 ** 9)  # never merges
        report = ConvergenceDetector().detect(result)
        assert not report.converged
        assert report.iterations_saved_fraction == 0.0

    def test_iterations_saved_fraction(self):
        result = synthetic_result(n_kept=400, converge_after=100)
        report = ConvergenceDetector().detect(result)
        assert report.converged
        assert report.iterations_saved_fraction == pytest.approx(
            1.0 - report.converged_iteration / 400, abs=1e-12
        )
        assert report.iterations_saved_fraction > 0.3

    def test_rhat_trace_monotone_tail(self):
        result = synthetic_result()
        report = ConvergenceDetector().detect(result)
        assert len(report.rhat_trace) == len(report.checkpoints)
        # After convergence the trace stays below threshold + slack.
        converged_idx = report.checkpoints.index(report.converged_iteration)
        assert all(r < 1.3 for r in report.rhat_trace[converged_idx:])

    def test_kl_trace_decreases_with_iterations(self):
        result = synthetic_result(n_kept=600, converge_after=100, seed=4)
        truth = np.random.default_rng(9).normal(size=(4000, 2))
        report = ConvergenceDetector(check_interval=50).detect(
            result, ground_truth=truth
        )
        assert len(report.kl_trace) == len(report.checkpoints)
        assert report.kl_trace[-1] < report.kl_trace[0]

    def test_work_saved_fraction_accounts_for_warmup(self):
        result = synthetic_result(n_kept=400, n_warmup=100, converge_after=100)
        report = ConvergenceDetector().detect(result)
        work_saved = report.work_saved_fraction(result)
        # Work savings are diluted by warmup work, as the paper notes.
        assert 0.0 < work_saved < report.iterations_saved_fraction + 0.05

    def test_check_interval_validation(self):
        with pytest.raises(ValueError, match="check_interval"):
            ConvergenceDetector(check_interval=0)

    def test_min_iterations_respected(self):
        result = synthetic_result(converge_after=1)  # converges immediately
        detector = ConvergenceDetector(min_iterations=100, check_interval=20)
        report = detector.detect(result)
        assert report.converged_iteration >= 100

    def test_unconverged_work_saved_zero(self):
        result = synthetic_result(converge_after=10 ** 9)
        report = ConvergenceDetector().detect(result)
        assert report.work_saved_fraction(result) == 0.0


class TestElisionReportEdgeCases:
    def test_report_unconverged_defaults(self):
        report = ElisionReport("x", budget_iterations=100, converged_iteration=None)
        assert not report.converged
        assert report.iterations_saved_fraction == 0.0
