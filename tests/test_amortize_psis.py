"""Unit tests for Pareto-smoothed importance sampling (the tier gate).

The GPD fit is checked against synthetic tails with known shape, and the
``psis`` decision surface against importance ratios whose reliability is
known analytically (thin-tailed ratios pass, Pareto-tailed ratios fail,
broken comparisons fail *closed*).
"""

import numpy as np
import pytest

from repro.amortize.psis import (
    KHAT_THRESHOLD,
    PsisDiagnostic,
    fit_generalized_pareto,
    psis,
    surrogate_log_ratios,
)
from repro.inference.advi import AdviResult
from tests.test_inference import StdNormal


def gpd_sample(n, k, sigma, rng):
    """Inverse-CDF draws from GPD(k, sigma)."""
    u = rng.uniform(size=n)
    return sigma * np.expm1(-k * np.log1p(-u)) / k


class TestGpdFit:
    @pytest.mark.parametrize("k_true", [0.2, 0.5, 1.0])
    def test_recovers_known_shape(self, k_true):
        rng = np.random.default_rng(0)
        x = np.sort(gpd_sample(4000, k_true, 1.0, rng))
        k_hat, sigma = fit_generalized_pareto(x)
        assert abs(k_hat - k_true) < 0.12
        assert 0.7 < sigma < 1.4

    def test_shrinks_small_tails_toward_half(self):
        rng = np.random.default_rng(1)
        # Near-zero true shape, tiny tail: the (n k + 5) / (n + 10) prior
        # pulls the estimate visibly toward 0.5.
        x = np.sort(gpd_sample(8, 0.05, 1.0, rng))
        k_hat, _ = fit_generalized_pareto(x)
        assert 0.1 < k_hat < 0.55

    def test_empty_and_nonfinite_fail(self):
        assert fit_generalized_pareto(np.array([]))[0] == np.inf
        assert fit_generalized_pareto(np.array([0.1, np.nan]))[0] == np.inf


class TestPsis:
    def test_thin_tailed_ratios_are_reliable(self):
        rng = np.random.default_rng(2)
        diag = psis(rng.normal(0.0, 0.5, size=1000))
        assert diag.k_hat <= KHAT_THRESHOLD
        assert diag.reliable()
        assert diag.n_tail >= 5

    def test_pareto_tailed_ratios_are_not(self):
        rng = np.random.default_rng(3)
        # exp(lr) ~ Pareto(alpha=1): tail shape k = 1 > 0.7.
        lr = rng.exponential(scale=1.0, size=2000)
        diag = psis(lr)
        assert diag.k_hat > KHAT_THRESHOLD
        assert not diag.reliable()

    def test_weights_self_normalize(self):
        rng = np.random.default_rng(4)
        diag = psis(rng.normal(size=500))
        total = np.exp(diag.log_weights).sum()
        assert np.isclose(total, 1.0)
        assert 1.0 <= diag.ess <= 500.0

    def test_neg_inf_ratios_are_legal_zero_weights(self):
        rng = np.random.default_rng(5)
        lr = rng.normal(size=200)
        lr[:3] = -np.inf  # draws outside p's support
        diag = psis(lr)
        assert np.isfinite(diag.k_hat)
        assert np.all(np.exp(diag.log_weights[:3]) == 0.0)

    @pytest.mark.parametrize(
        "lr",
        [
            np.array([0.0, 1.0, np.nan, 0.5, 0.2, 0.1]),
            np.array([0.0, 1.0, np.inf, 0.5, 0.2, 0.1]),
            np.full(50, -np.inf),  # every draw outside p's support
            np.array([0.1, 0.2]),  # too few draws to say anything
        ],
    )
    def test_broken_comparisons_fail_closed(self, lr):
        diag = psis(lr)
        assert diag.k_hat == np.inf
        assert not diag.reliable()
        assert not diag.reliable(threshold=10.0)

    def test_flat_tail_passes(self):
        # Identical ratios: importance weighting is trivially exact.
        diag = psis(np.zeros(100))
        assert diag.reliable()

    def test_reliable_respects_custom_threshold(self):
        diag = PsisDiagnostic(
            k_hat=0.9, log_weights=np.zeros(1), n_tail=5, ess=1.0
        )
        assert not diag.reliable()
        assert diag.reliable(threshold=1.0)


class TestSurrogateLogRatios:
    def test_exact_guide_gives_constant_ratios(self):
        # q == p (both standard normal) up to the prior's constant: the
        # ratios collapse to a single value, the ideal surrogate.
        model = StdNormal(3)
        guide = AdviResult(mu=np.zeros(3), log_sigma=np.zeros(3))
        draws = guide.sample(64, np.random.default_rng(0))
        ratios = surrogate_log_ratios(model, guide, draws)
        assert ratios.shape == (64,)
        assert np.allclose(ratios, ratios[0])
        assert psis(ratios).reliable()

    def test_too_narrow_guide_fails_the_gate(self):
        # sigma_q^2 = 0.25 < 1/2: the importance weights have infinite
        # variance, exactly the regime PSIS exists to flag.
        model = StdNormal(2)
        guide = AdviResult(mu=np.zeros(2), log_sigma=np.log(np.full(2, 0.5)))
        draws = guide.sample(2000, np.random.default_rng(1))
        diag = psis(surrogate_log_ratios(model, guide, draws))
        assert not diag.reliable()

    def test_subsamples_to_max_draws(self):
        model = StdNormal(2)
        guide = AdviResult(mu=np.zeros(2), log_sigma=np.zeros(2))
        draws = guide.sample(500, np.random.default_rng(2))
        ratios = surrogate_log_ratios(model, guide, draws, max_draws=100)
        assert ratios.shape == (100,)

    def test_rejects_non_matrix_draws(self):
        model = StdNormal(2)
        guide = AdviResult(mu=np.zeros(2), log_sigma=np.zeros(2))
        with pytest.raises(ValueError, match="draws must be"):
            surrogate_log_ratios(model, guide, np.zeros(5))
