"""Reproduction of "Demystifying Bayesian Inference Workloads" (ISPASS 2019).

Subpackages
-----------
``repro.autodiff``
    Reverse-mode automatic differentiation over numpy (the Stan-math
    stand-in).
``repro.models``
    Distributions, constrained transforms, and the ``BayesianModel`` API.
``repro.inference``
    Metropolis-Hastings (the paper's Algorithm 1), HMC, and NUTS with
    Stan-style warmup adaptation; multi-chain driver with work accounting.
``repro.diagnostics``
    Gelman-Rubin R-hat, effective sample size, KL divergence, summaries.
``repro.suite``
    BayesSuite: the paper's ten workloads (Table I) with synthetic data.
``repro.arch``
    The simulated testbed: Table II platforms, cache simulator, workload
    profiling, analytical multicore machine model, energy model.
``repro.core``
    The paper's contribution: LLC-miss prediction (Sec V-A), platform
    scheduling (Sec V-B), computation elision via convergence detection
    (Sec VI-A), design-space exploration (Sec VI-B), and the end-to-end
    pipeline (Sec VI-C).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

__version__ = "1.0.0"
