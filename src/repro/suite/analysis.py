"""Static analysis of the BayesSuite models: the distribution census.

Section VII-A of the paper studies which probability distributions the
suite's models use and finds "the most popular distributions are Gaussian
and Cauchy", motivating special functional units for their CDFs (``erf``,
``atan``). This module reproduces that census by statically scanning each
workload's ``log_joint`` source for calls into the distribution library —
the same information a compiler pass over Stan programs would extract.
"""

from __future__ import annotations

import inspect
import re
from collections import Counter
from typing import Dict, List

from repro.suite.registry import WORKLOAD_CLASSES

#: distribution call -> distribution family (for the census)
_FAMILY = {
    "normal_lpdf": "gaussian",
    "half_normal_lpdf": "gaussian",
    "lognormal_lpdf": "gaussian",
    "multi_normal_chol_lpdf": "gaussian",
    "multi_normal_prec_quad_lpdf": "gaussian",
    "cauchy_lpdf": "cauchy",
    "half_cauchy_lpdf": "cauchy",
    "student_t_lpdf": "student-t",
    "exponential_lpdf": "exponential",
    "gamma_lpdf": "gamma",
    "inv_gamma_lpdf": "gamma",
    "beta_lpdf": "beta",
    "dirichlet_lpdf": "dirichlet",
    "uniform_lpdf": "uniform",
    "poisson_lpmf": "poisson",
    "poisson_log_lpmf": "poisson",
    "bernoulli_logit_lpmf": "bernoulli",
    "binomial_logit_lpmf": "binomial",
    "neg_binomial_2_lpmf": "neg-binomial",
    "categorical_logit_lpmf": "categorical",
    # model-local density helpers
    "_poisson_log_elementwise": "poisson",
    "_binomial_lpmf_p": "binomial",
}

_CALL_PATTERN = re.compile(r"dist\.([a-z_0-9]+)\s*\(")

#: model-local density helpers (marginalized mixtures etc.) -> family
_HELPER_FAMILY = {
    "_poisson_log_elementwise": "poisson",
    "_binomial_lpmf_p": "binomial",
}
_HELPER_PATTERN = re.compile(
    "(" + "|".join(map(re.escape, _HELPER_FAMILY)) + r")\s*\("
)


def distributions_in_workload(cls) -> List[str]:
    """Distribution library calls in one workload's ``log_joint`` source."""
    source = inspect.getsource(cls.log_joint)
    # Include model-module helpers called from log_joint (e.g. the ODE
    # model's _predict), which is where some densities live.
    module_source = inspect.getsource(inspect.getmodule(cls))
    calls = _CALL_PATTERN.findall(source)
    if not calls:
        calls = _CALL_PATTERN.findall(module_source)
    else:
        # Add helper-level calls that log_joint reaches indirectly.
        helper_calls = [
            c for c in _CALL_PATTERN.findall(module_source) if c not in calls
        ]
        calls.extend(helper_calls)
    out = [c for c in calls if c in _FAMILY]
    # Model-local densities (e.g. the tickets mixture's elementwise Poisson,
    # the threshold test's direct-probability binomial).
    helpers = set(_HELPER_PATTERN.findall(source))
    helpers |= {
        h for h in _HELPER_PATTERN.findall(module_source)
        if f"def {h}" in module_source
    }
    out.extend(sorted(helpers))
    return out


def distribution_census(classes=None) -> Dict[str, int]:
    """Count distribution-family usages across the suite (Section VII-A)."""
    counter: Counter = Counter()
    for cls in classes or WORKLOAD_CLASSES:
        for call in distributions_in_workload(cls):
            counter[_FAMILY[call]] += 1
    return dict(counter)


def special_function_requirements(classes=None) -> Dict[str, int]:
    """Workload counts per special function an accelerator would need.

    Gaussian-family CDF/densities need ``erf``/``exp``; Cauchy needs
    ``atan``; everything else shares ``exp``/``log``/``lgamma``.
    """
    needs: Counter = Counter()
    for cls in classes or WORKLOAD_CLASSES:
        families = {_FAMILY[c] for c in distributions_in_workload(cls)}
        if "gaussian" in families:
            needs["erf"] += 1
        if "cauchy" in families:
            needs["atan"] += 1
        if families & {"gamma", "beta", "poisson", "binomial",
                       "neg-binomial", "dirichlet"}:
            needs["lgamma"] += 1
        if families:
            needs["exp/log"] += 1
    return dict(needs)
