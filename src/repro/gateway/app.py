"""The gateway: one process that drains the queue *and* serves HTTP.

:class:`Gateway` wraps an :class:`~repro.serve.server.InferenceServer` with
a network boundary built entirely on the stdlib (``http.server.
ThreadingHTTPServer``; the repo's hard constraint is the baked-in
toolchain). Two thread groups share the server:

* the **drain thread** — the single consumer, looping
  :meth:`InferenceServer.run_next` exactly as ``repro serve --drain`` does,
  but forever: an empty queue parks on a wake event instead of exiting;
* the **handler threads** — one per HTTP connection, submitting into the
  priority queue (admission control applies: a full queue is a 429 at the
  front door) and reading job state.

Progress flows the other way through the server's callback seams:
``on_job_start``/``on_job_finish`` (state transitions) and the
``on_progress`` hook (per-checkpoint online R-hat, the same stream the
convergence monitor sees) publish into an :class:`~repro.gateway.sse.
EventBroker`, which feeds ``GET /v1/jobs/{id}/events`` subscribers. The
gateway *composes* with callbacks already installed on the server — it
chains, never replaces.

With a ``file_queue``, every HTTP submission is also appended to the
durable JSONL log and marked running/finished as the job progresses, so a
crashed gateway recovers exactly like a crashed ``repro serve``: orphans
re-run (deterministically, or answered from the result store).

With a ``fleet`` (:class:`~repro.fleet.member.FleetMember`) instead, the
gateway is one **replica** of several sharing a sharded queue root:
submissions route by the weighted consistent-hash ring (a spec belonging
to another replica's shard is refused with the owner's address — HTTP 421
``wrong_replica``), durable marks go to lease-fenced per-shard logs, and a
heartbeat thread renews held leases, adopts shards whose drainer died, and
replays the adopted shards' orphans through the normal recovery path.
"""

from __future__ import annotations

import threading
import warnings
from http.server import ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.fleet.member import FleetMember, WrongReplicaError
from repro.gateway.auth import BearerAuth
from repro.gateway.ratelimit import RateLimiter
from repro.gateway.routes import GatewayDrainingError, GatewayRequestHandler
from repro.gateway.sse import DEFAULT_SUBSCRIBER_LIMIT, EventBroker, JobEvent
from repro.resilience.errors import MutationFencedError
from repro.serve.job import Job, JobSpec, JobState
from repro.serve.server import InferenceServer
from repro.telemetry.instrument import (
    FLEET_FENCED_WRITES,
    FLEET_LEASE_ACQUIRED,
    FLEET_LEASE_EPOCH,
    FLEET_LEASE_LOST,
    FLEET_LEASE_RENEWALS,
    FLEET_ROUTED,
    FLEET_SHARD_QUEUE_DEPTH,
    FLEET_WRONG_REPLICA,
    RESILIENCE_DURABILITY_ERRORS,
    help_for,
)


class _GatewayHTTPServer(ThreadingHTTPServer):
    #: SSE connections may be parked in a keep-alive wait at shutdown;
    #: daemon threads let the process exit instead of hanging on them.
    daemon_threads = True
    block_on_close = False
    #: Set by :class:`Gateway` after construction.
    gateway: "Gateway"


class Gateway:
    """HTTP front door plus queue drainer over one inference server."""

    def __init__(
        self,
        server: InferenceServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tokens=None,
        auth: Optional[BearerAuth] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[int] = None,
        file_queue=None,
        fleet: Optional[FleetMember] = None,
        sse_keepalive: float = 15.0,
        sse_subscriber_limit: int = DEFAULT_SUBSCRIBER_LIMIT,
        idle_poll: float = 0.05,
    ) -> None:
        if fleet is not None and file_queue is not None:
            raise ValueError(
                "pass either file_queue (single durable log) or fleet "
                "(sharded leased logs), not both"
            )
        self.server = server
        self.registry = server.registry
        self.tracer = server.tracer
        self.auth = auth if auth is not None else (
            BearerAuth(tokens) if tokens else None
        )
        self.ratelimit = (
            RateLimiter(rate_limit, burst, registry=self.registry)
            if rate_limit is not None else None
        )
        self.events = EventBroker()
        self.file_queue = file_queue
        self.fleet = fleet
        self.replica_id = fleet.replica_id if fleet is not None else None
        self.sse_keepalive = sse_keepalive
        self.sse_subscriber_limit = sse_subscriber_limit
        self.idle_poll = idle_poll
        #: Durable-queue entry ids riding on each job (duplicates fold),
        #: each tagged with its shard (None in single-log mode).
        self._entries: Dict[str, List[Tuple[Optional[int], str]]] = {}
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drain_thread: Optional[threading.Thread] = None
        self._http_thread: Optional[threading.Thread] = None
        self._lease_thread: Optional[threading.Thread] = None
        self._chain_callbacks()
        self.http = _GatewayHTTPServer((host, port), GatewayRequestHandler)
        self.http.gateway = self

    # -- callback wiring -------------------------------------------------------

    def _chain_callbacks(self) -> None:
        server = self.server
        prev_start = server.on_job_start
        prev_finish = server.on_job_finish
        prev_progress = server.on_progress

        def on_start(job: Job) -> None:
            if prev_start is not None:
                prev_start(job)
            for shard, entry_id in self._job_entries(job):
                self._queue_append(self._mark_running, shard, entry_id)
            self.events.publish(job.job_id, self._state_event(job))

        def on_finish(job: Job) -> None:
            if prev_finish is not None:
                prev_finish(job)
            if job.state.terminal:
                for shard, entry_id in self._job_entries(job):
                    self._queue_append(
                        self._mark_finished,
                        shard,
                        entry_id,
                        state=job.state.value,
                    )
            self.events.publish(job.job_id, self._state_event(job))

        def on_progress(job: Job, event: str, data: Dict) -> None:
            if prev_progress is not None:
                prev_progress(job, event, data)
            payload = {"job_id": job.job_id}
            payload.update(data)
            self.events.publish(job.job_id, JobEvent(event=event, data=payload))

        server.on_job_start = on_start
        server.on_job_finish = on_finish
        server.on_progress = on_progress

    def _job_entries(self, job: Job) -> List[Tuple[Optional[int], str]]:
        if self.file_queue is None and self.fleet is None:
            return []
        with self._lock:
            return list(self._entries.get(job.job_id, ()))

    # -- durable-log plumbing --------------------------------------------------

    def _mark_running(self, shard: Optional[int], entry_id: str) -> None:
        self._entry_queue(shard).mark_running(entry_id)

    def _mark_finished(
        self, shard: Optional[int], entry_id: str, state: str = "done"
    ) -> None:
        self._entry_queue(shard).mark_finished(entry_id, state=state)

    def _entry_queue(self, shard: Optional[int]):
        """The (possibly lease-fenced) log an entry's marks belong in."""
        if shard is None:
            return self.file_queue
        return self.fleet.consumer(shard)

    def _durable_submit(self, shard: Optional[int], spec: JobSpec) -> str:
        """Producer-side append — deliberately unguarded (any process may
        hand work to a shard; only draining it is exclusive)."""
        if shard is None:
            return self.file_queue.submit(spec)
        return self.fleet.producer(shard).submit(spec)

    def _queue_append(self, append, *args, **kwargs):
        """Run one durable-queue append, degrading on failure.

        A full or dying disk under the JSONL log must not fail the request
        or the job — the in-memory server is still correct; what is lost is
        crash recovery for this entry. Likewise a lease fence veto (this
        replica lost the shard; its successor owns the entry now) must not
        fail the running job. Both are warned and counted
        (``repro_resilience_durability_errors_total{target="filequeue"}``,
        ``repro_fleet_fenced_writes_total``) so operators see the gap.
        Returns the append's value, or None when it failed.
        """
        try:
            return append(*args, **kwargs)
        except MutationFencedError as exc:
            warnings.warn(
                f"durable queue write fenced ({exc}); "
                "the shard's new owner will finish this entry",
                RuntimeWarning,
            )
            self.registry.counter(
                FLEET_FENCED_WRITES, help=help_for(FLEET_FENCED_WRITES)
            ).inc()
            return None
        except OSError as exc:
            warnings.warn(
                f"durable queue append failed ({exc}); "
                "continuing without durability for this entry",
                RuntimeWarning,
            )
            self.registry.counter(
                RESILIENCE_DURABILITY_ERRORS,
                {"target": "filequeue"},
                help=help_for(RESILIENCE_DURABILITY_ERRORS),
            ).inc()
            return None

    @staticmethod
    def _state_event(job: Job) -> JobEvent:
        data = {
            "job_id": job.job_id,
            "state": job.state.value,
            "attempts": job.attempts,
        }
        if job.state is JobState.FAILED and job.error:
            data["error"] = job.error.rstrip().splitlines()[-1]
        if job.failure_kind and not job.state.terminal:
            data["failure_kind"] = job.failure_kind
        if job.elision is not None and job.elision.elided:
            data["converged_kept"] = int(job.elision.converged_kept)
        if job.deduped:
            data["deduped"] = True
        return JobEvent(
            event="state", data=data, terminal=job.state.terminal
        )

    # -- submission and lookup (handler threads) -------------------------------

    def submit(
        self,
        spec: JobSpec,
        entry_id: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Job:
        """Admit a spec; record it durably; publish its first event(s).

        ``entry_id`` links an already-recorded durable-queue entry (startup
        recovery) instead of appending a fresh one; recovery callers in
        fleet mode pass the entry's ``shard`` explicitly, bypassing ring
        routing (a taken-over shard's entries belong to *that* shard even
        when the ring would now place them elsewhere). Raises
        :class:`~repro.serve.queue.AdmissionError` on a full queue and
        ``KeyError`` on an unknown workload, exactly like the in-process
        server; :class:`~repro.gateway.routes.GatewayDrainingError` once
        :meth:`begin_drain` has been called; :class:`~repro.fleet.member.
        WrongReplicaError` (HTTP: 421 + the owner's address) when the spec
        hashes to a shard another replica drains.
        """
        if self.draining:
            raise GatewayDrainingError(
                "gateway is draining; not accepting new jobs"
            )
        if self.fleet is not None and shard is None:
            try:
                shard = self.fleet.route(spec)
            except WrongReplicaError:
                self.registry.counter(
                    FLEET_WRONG_REPLICA, help=help_for(FLEET_WRONG_REPLICA)
                ).inc()
                raise
            self.registry.counter(
                FLEET_ROUTED,
                {"shard": str(shard)},
                help=help_for(FLEET_ROUTED),
            ).inc()
        with self._lock:
            known = set(self.server.jobs)
            job = self.server.submit(spec)
            fresh = job.job_id not in known
            if self.file_queue is not None or self.fleet is not None:
                if entry_id is None:
                    entry_id = self._queue_append(self._durable_submit, shard, spec)
                if entry_id is not None:
                    self._entries.setdefault(job.job_id, []).append(
                        (shard, entry_id)
                    )
                    if job.state.terminal:
                        # Answered from the result store without running.
                        self._queue_append(
                            self._mark_finished,
                            shard,
                            entry_id,
                            state=job.state.value,
                        )
        if fresh:
            self.events.publish(
                job.job_id,
                JobEvent(
                    event="state",
                    data={
                        "job_id": job.job_id,
                        "state": JobState.QUEUED.value,
                        "attempts": 0,
                    },
                ),
            )
            if job.state is not JobState.QUEUED:
                self.events.publish(job.job_id, self._state_event(job))
        self._wake.set()
        return job

    def job(self, job_id: str) -> Optional[Job]:
        return self.server.jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self.server.jobs.values())

    def health(self) -> Dict:
        health = {
            "status": "draining" if self.draining else "ok",
            "queued": len(self.server.queue),
            "jobs": len(self.server.jobs),
            "draining": bool(
                self._drain_thread is not None and self._drain_thread.is_alive()
            ),
            "accepting": not self.draining,
        }
        if self.server.admission is not None:
            health["brownout"] = self.server.admission.brownout_active()
        breakers = getattr(self.server, "breakers", None)
        if breakers is not None:
            health["breakers"] = breakers.snapshot()
        if self.fleet is not None:
            health["replica_id"] = self.replica_id
            health["n_shards"] = self.fleet.topology.n_shards
            health["leases"] = self.fleet.lease_view()
        return health

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.http.server_address[1]

    @property
    def url(self) -> str:
        host = self.http.server_address[0]
        return f"http://{host}:{self.port}"

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            job = self.server.run_next()
            if job is None:
                # Fully drained (no queued work, no pending retries): park
                # until a submission wakes us, polling as a backstop.
                self._wake.wait(timeout=self.idle_poll)
                self._wake.clear()

    # -- fleet heartbeat -------------------------------------------------------

    def _recover_shard(self, shard: int) -> None:
        """Replay an owned shard's log into the server (startup/takeover).

        Entries resubmit with their recorded entry id and an *explicit*
        shard, so their marks land back in the log they came from.
        Deterministic execution (or the shared result store) makes the
        replay bit-identical to what the previous drainer would have
        produced.
        """
        try:
            recovery = self.fleet.consumer(shard).load()
        except (OSError, MutationFencedError) as exc:
            warnings.warn(
                f"shard {shard}: recovery load failed ({exc})",
                RuntimeWarning,
            )
            return
        for entry in recovery.entries:
            try:
                self.submit(entry.spec, entry_id=entry.entry_id, shard=shard)
            except Exception as exc:
                # A rejected entry (full queue, drain race) stays in the
                # shard log — never marked finished — so a later tick or
                # restart replays it again.
                warnings.warn(
                    f"shard {shard}: could not resubmit recovered entry "
                    f"{entry.entry_id} ({exc})",
                    RuntimeWarning,
                )

    def _lease_tick(self) -> None:
        fleet = self.fleet
        lost = fleet.renew_all()
        if lost:
            self.registry.counter(
                FLEET_LEASE_LOST, help=help_for(FLEET_LEASE_LOST)
            ).inc(len(lost))
            warnings.warn(
                f"replica {self.replica_id!r} lost shard lease(s) {lost}",
                RuntimeWarning,
            )
        if fleet.leases:
            self.registry.counter(
                FLEET_LEASE_RENEWALS, help=help_for(FLEET_LEASE_RENEWALS)
            ).inc(len(fleet.leases))
        if not self.draining:
            for shard in fleet.takeover_scan():
                self.registry.counter(
                    FLEET_LEASE_ACQUIRED,
                    {"shard": str(shard)},
                    help=help_for(FLEET_LEASE_ACQUIRED),
                ).inc()
                self._recover_shard(shard)
        for shard, lease in list(fleet.leases.items()):
            labels = {"shard": str(shard)}
            self.registry.gauge(
                FLEET_LEASE_EPOCH, labels, help=help_for(FLEET_LEASE_EPOCH)
            ).set(lease.epoch)
            try:
                depth = fleet.queue.depth(shard)
            except OSError:
                continue
            self.registry.gauge(
                FLEET_SHARD_QUEUE_DEPTH,
                labels,
                help=help_for(FLEET_SHARD_QUEUE_DEPTH),
            ).set(depth)

    def _lease_loop(self) -> None:
        # Renew at a third of the TTL: two heartbeats of slack before a
        # stall lets the lease lapse and a peer adopts the shard.
        interval = max(0.05, self.fleet.ttl / 3.0)
        while not self._stop.wait(interval):
            try:
                self._lease_tick()
            except Exception as exc:
                warnings.warn(
                    f"lease heartbeat failed ({exc})", RuntimeWarning
                )

    def start(self) -> "Gateway":
        if self._http_thread is not None:
            return self
        self._stop.clear()
        if self.fleet is not None:
            for shard in self.fleet.acquire_preferred():
                self.registry.counter(
                    FLEET_LEASE_ACQUIRED,
                    {"shard": str(shard)},
                    help=help_for(FLEET_LEASE_ACQUIRED),
                ).inc()
                self._recover_shard(shard)
            self._lease_thread = threading.Thread(
                target=self._lease_loop,
                name="repro-gateway-lease",
                daemon=True,
            )
            self._lease_thread.start()
        self._drain_thread = threading.Thread(
            target=self._drain_loop, name="repro-gateway-drain", daemon=True
        )
        self._drain_thread.start()
        self._http_thread = threading.Thread(
            target=self.http.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-gateway-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` has refused further admissions."""
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Start a graceful shutdown: refuse new work, checkpoint old work.

        New submissions raise (HTTP: 503 + Retry-After) from this point on.
        The in-flight job's chains are asked to halt at their next
        iteration boundary — the stop broadcast makes it a checkpointed
        "last" iteration, so the job parks as RETRYING and a later server
        resumes it from the checkpoint, bit-identical. Follow with
        :meth:`stop` to join the threads.
        """
        self._draining.set()
        self.server.pool.request_halt()
        self._wake.set()

    def stop(self, timeout: float = 30.0) -> List[str]:
        """Stop the HTTP and drain threads; returns names of stuck threads.

        A thread still alive after its bounded join is *reported* — named
        in the returned list and warned about — never silently abandoned:
        a caller about to exit needs to know the drain thread is still
        mid-job (its checkpoint may be incomplete).
        """
        self._stop.set()
        self._wake.set()
        self.http.shutdown()
        stuck: List[str] = []
        if self._lease_thread is not None:
            self._lease_thread.join(timeout=timeout)
            if self._lease_thread.is_alive():
                stuck.append(self._lease_thread.name)
            self._lease_thread = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=timeout)
            if self._http_thread.is_alive():
                stuck.append(self._http_thread.name)
            self._http_thread = None
        if self._drain_thread is not None:
            # run_next blocks for the job in flight; bounded join so stop()
            # cannot hang forever on a pathological chain.
            self._drain_thread.join(timeout=timeout)
            if self._drain_thread.is_alive():
                stuck.append(self._drain_thread.name)
            self._drain_thread = None
        for name in stuck:
            warnings.warn(
                f"gateway thread {name!r} did not stop within {timeout:.1f}s",
                RuntimeWarning,
            )
        if self.fleet is not None and not stuck:
            # Hand the shards back only once the drain thread is truly
            # done: releasing earlier would fence our own final marks. A
            # stuck drain keeps its leases and lets them expire — the
            # takeover path, not a clean hand-off, is then correct.
            self.fleet.release_all()
        self.http.server_close()
        return stuck

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
