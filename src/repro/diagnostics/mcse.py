"""Monte Carlo standard errors for posterior estimates.

MCSE quantifies how much of a reported posterior mean/quantile is sampling
noise: ``mcse_mean = sd / sqrt(ESS)``. The elision policies implicitly trade
MCSE for latency, so the library exposes it directly (and the summary tables
can report it alongside R-hat and ESS).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.diagnostics.ess import effective_sample_size


def mcse_mean(draws: np.ndarray) -> float:
    """Monte Carlo standard error of the posterior mean.

    ``draws`` is (n_chains, n_draws) for one parameter.
    """
    draws = np.asarray(draws, dtype=float)
    if draws.ndim == 1:
        draws = draws[None, :]
    sd = draws.reshape(-1).std(ddof=1)
    ess = effective_sample_size(draws)
    return float(sd / np.sqrt(max(ess, 1.0)))


def mcse_quantile(draws: np.ndarray, prob: float) -> float:
    """MCSE of a posterior quantile via the binomial/beta argument
    (Doss et al. 2014 style normal approximation on the quantile scale)."""
    if not 0.0 < prob < 1.0:
        raise ValueError("prob must be in (0, 1)")
    draws = np.asarray(draws, dtype=float)
    if draws.ndim == 1:
        draws = draws[None, :]
    flat = np.sort(draws.reshape(-1))
    ess = effective_sample_size(draws)
    # Standard error of the empirical CDF at the quantile, mapped back to
    # the parameter scale through the order statistics.
    se_p = np.sqrt(prob * (1.0 - prob) / max(ess, 1.0))
    lo = float(np.quantile(flat, max(prob - se_p, 0.0)))
    hi = float(np.quantile(flat, min(prob + se_p, 1.0)))
    return (hi - lo) / 2.0


def mean_confidence_interval(
    draws: np.ndarray, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI for the posterior-mean *estimate* (not the
    posterior interval): mean +- z * MCSE."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    draws = np.asarray(draws, dtype=float)
    center = float(draws.mean())
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    half = z * mcse_mean(draws)
    return center - half, center + half
