"""Posterior predictive checks: the fitted models reproduce their data."""

import numpy as np
import pytest

from repro.inference import NUTS, run_chains
from repro.suite import load_workload
from repro.suite.ppc import ppc_pvalue, supported_workloads


CHECKED = ["12cities", "ad", "tickets", "memory", "disease", "butterfly"]


@pytest.fixture(scope="module")
def fits():
    out = {}
    for name in CHECKED:
        model = load_workload(name, scale=0.25)
        out[name] = (
            model,
            run_chains(model, NUTS(max_tree_depth=6), n_iterations=200,
                       n_chains=2, seed=11),
        )
    return out


class TestPpc:
    def test_supported_list(self):
        assert supported_workloads() == [
            "12cities", "ad", "butterfly", "disease", "memory", "survival",
            "tickets", "votes",
        ]

    def test_unsupported_raises(self, fits):
        model, result = fits["ad"]
        model.name = "not-a-workload"
        try:
            with pytest.raises(KeyError, match="replicator"):
                ppc_pvalue(model, result)
        finally:
            model.name = "ad"

    @pytest.mark.parametrize(
        "name", ["12cities", "ad", "tickets", "memory", "disease", "butterfly"]
    )
    def test_mean_statistic_calibrated(self, fits, name):
        model, result = fits[name]
        p = ppc_pvalue(model, result, statistic=np.mean, n_replications=60)
        assert 0.02 <= p <= 0.98, f"{name}: PPC p-value {p}"

    @pytest.mark.parametrize("name", ["12cities", "tickets"])
    def test_variance_statistic_not_degenerate(self, fits, name):
        model, result = fits[name]
        p = ppc_pvalue(model, result, statistic=np.var, n_replications=60)
        assert 0.0 <= p <= 1.0

    def test_deterministic_given_seed(self, fits):
        model, result = fits["ad"]
        a = ppc_pvalue(model, result, seed=3)
        b = ppc_pvalue(model, result, seed=3)
        assert a == b
