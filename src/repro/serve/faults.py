"""Fault injection for exercising the serving layer's failure paths.

Real worker crashes are timing-dependent and hard to script; this module
makes them deterministic. A *fault plan* is a JSON file listing faults, each
targeting one ``(job, chain)`` at one iteration:

* ``kill`` — SIGKILL the worker process at iteration ``k`` (simulates an OOM
  kill or hardware loss; nothing is flushed, queues may lose buffered
  events);
* ``raise`` — raise :class:`InjectedFaultError` inside the chain (an
  in-chain software bug — deterministic, therefore classified as poison by
  the server's retry policy);
* ``hang`` — sleep inside the iteration hook (a stuck worker, detected by
  heartbeat timeout rather than process death);
* ``nan_logp`` — wrap the model so ``logp``/``logp_and_grad`` return NaN
  from iteration ``k`` on (numerical poison; ``k = -1`` poisons the very
  first evaluation, before the loop starts).

The plan's path travels to workers through the ``REPRO_SERVE_FAULTS``
environment variable, which both ``fork`` and ``spawn`` children inherit.
One-shot faults (kill/raise/hang) must fire exactly once *across processes*
— a respawned worker re-running the same chain task must not re-trip the
fault, or nothing would ever recover. Cross-process once-semantics use
``O_CREAT | O_EXCL`` sentinel files next to the plan: whichever process
creates the sentinel first owns the firing.

This module is test infrastructure, but it ships in the package (not the
test tree) so operators can rehearse failure handling against a live
service the same way the test suite does.
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional

import numpy as np

#: Environment variable carrying the fault-plan path into workers.
ENV_VAR = "REPRO_SERVE_FAULTS"

FAULT_KINDS = ("kill", "raise", "hang", "nan_logp")


class InjectedFaultError(RuntimeError):
    """Raised inside a chain by a ``raise`` fault."""


@dataclass(frozen=True)
class Fault:
    """One scripted failure."""

    kind: str
    #: Iteration at which to fire (0-based, warmup included). ``-1`` with
    #: ``nan_logp`` poisons the initial density evaluation.
    iteration: int
    #: Restrict to one job id (None matches every job).
    job_id: Optional[str] = None
    #: Restrict to one chain (None matches every chain).
    chain_index: Optional[int] = None
    #: ``hang`` only: how long to sleep.
    seconds: float = 3600.0
    #: Fire at most this many times across all processes (``nan_logp`` is
    #: persistent and ignores this).
    max_fires: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )

    def matches(self, job_id: str, chain_index: int) -> bool:
        return (self.job_id is None or self.job_id == job_id) and (
            self.chain_index is None or self.chain_index == chain_index
        )


class _IterationClock:
    """Tracks the chain's current iteration for the poisoned-model proxy.

    Starts at ``-1`` (the pre-loop initial evaluation) and is advanced by
    the injector's per-iteration hook.
    """

    def __init__(self) -> None:
        self.t = -1


class _PoisonedModel:
    """Model proxy returning NaN log-densities once the fault is active."""

    def __init__(self, model, clock: _IterationClock, start_iteration: int) -> None:
        self._model = model
        self._clock = clock
        self._start = start_iteration

    def __getattr__(self, name):
        return getattr(self._model, name)

    @property
    def _active(self) -> bool:
        return self._clock.t >= self._start

    def logp(self, x):
        value = self._model.logp(x)
        return float("nan") if self._active else value

    def logp_and_grad(self, x):
        logp, grad = self._model.logp_and_grad(x)
        if self._active:
            return float("nan"), np.full_like(np.asarray(grad, dtype=float), np.nan)
        return logp, grad

    # The compiled-tape seam must resolve to the poisoned evaluator, not be
    # proxied through __getattr__ to the clean underlying model.
    def logp_and_grad_fn(self):
        return self.logp_and_grad

    def compiled_logp_and_grad(self, x):
        return self.logp_and_grad(x)


class FaultInjector:
    """Evaluates a fault plan inside one worker process."""

    def __init__(self, faults: List[Fault], plan_path: Optional[str] = None) -> None:
        self.faults = faults
        self.plan_path = plan_path

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """The injector described by ``REPRO_SERVE_FAULTS``, if any."""
        plan_path = os.environ.get(ENV_VAR)
        if not plan_path:
            return None
        try:
            return cls(read_plan(plan_path), plan_path)
        except (OSError, ValueError, json.JSONDecodeError):
            # A vanished or malformed plan disables injection rather than
            # failing chains for a reason unrelated to the experiment.
            return None

    # -- cross-process once-semantics -----------------------------------------

    def _claim(self, index: int, fault: Fault) -> bool:
        """Atomically claim one firing of fault ``index``; False when spent."""
        if self.plan_path is None:
            return True
        for n in range(fault.max_fires):
            sentinel = f"{self.plan_path}.fired-{index}-{n}"
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    # -- injection points ------------------------------------------------------

    def wrap_model(self, model, job_id: str, chain_index: int, clock: _IterationClock):
        """Apply any matching ``nan_logp`` fault to the model."""
        for fault in self.faults:
            if fault.kind == "nan_logp" and fault.matches(job_id, chain_index):
                return _PoisonedModel(model, clock, fault.iteration)
        return model

    def on_iteration(self, job_id: str, chain_index: int, t: int) -> None:
        """Fire any one-shot fault scheduled for iteration ``t``."""
        for index, fault in enumerate(self.faults):
            if fault.kind == "nan_logp":
                continue
            if fault.iteration != t or not fault.matches(job_id, chain_index):
                continue
            if not self._claim(index, fault):
                continue
            if fault.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.kind == "raise":
                raise InjectedFaultError(
                    f"injected fault: job {job_id} chain {chain_index} "
                    f"iteration {t}"
                )
            elif fault.kind == "hang":
                time.sleep(fault.seconds)


# -- plan files ----------------------------------------------------------------


def write_plan(path: str, faults: List[Fault]) -> str:
    """Serialize a fault plan; returns the path for convenience."""
    payload = [
        {
            "kind": f.kind,
            "iteration": f.iteration,
            "job_id": f.job_id,
            "chain_index": f.chain_index,
            "seconds": f.seconds,
            "max_fires": f.max_fires,
        }
        for f in faults
    ]
    Path(path).write_text(json.dumps(payload, indent=2))
    return path


def read_plan(path: str) -> List[Fault]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"fault plan {path} must be a JSON list")
    return [Fault(**entry) for entry in payload]


@contextmanager
def installed(path: str) -> Iterator[str]:
    """Point ``REPRO_SERVE_FAULTS`` at ``path`` for the duration.

    Must wrap worker-pool *startup*: workers read their own (inherited)
    environment, so the variable has to be set before the processes fork.
    """
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(path)
    try:
        yield str(path)
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def corrupt_file(path: str, keep_bytes: int = 64) -> None:
    """Truncate a file to its first ``keep_bytes`` bytes (torn-write model)."""
    data = Path(path).read_bytes()
    Path(path).write_bytes(data[:keep_bytes])
