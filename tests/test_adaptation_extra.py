"""Extra coverage for warmup adaptation and sampler edge cases."""

import numpy as np
import pytest

from repro.inference.adaptation import (
    DualAveraging,
    WelfordVariance,
    find_reasonable_step_size,
)
from repro.inference import HMC, NUTS, MetropolisHastings, run_chains
from repro.models import BayesianModel, ParameterSpec
from repro.models import distributions as dist


class Narrow(BayesianModel):
    """Tightly scaled Gaussian: probing must find a small step."""

    name = "narrow"
    scale = 0.01

    @property
    def params(self):
        return [ParameterSpec("x", 2, init=0.0)]

    def log_joint(self, p):
        return dist.normal_lpdf(p["x"], 0.0, self.scale)


class Wide(BayesianModel):
    name = "wide-target"
    scale = 10.0

    @property
    def params(self):
        return [ParameterSpec("x", 2, init=0.0)]

    def log_joint(self, p):
        return dist.normal_lpdf(p["x"], 0.0, self.scale)


class TestFindReasonableStepSize:
    def test_narrow_target_gets_small_step(self):
        rng = np.random.default_rng(0)
        step = find_reasonable_step_size(
            Narrow().logp_and_grad, np.zeros(2), rng, np.ones(2)
        )
        assert step < 0.3

    def test_wide_target_gets_large_step(self):
        rng = np.random.default_rng(0)
        narrow = find_reasonable_step_size(
            Narrow().logp_and_grad, np.zeros(2), rng, np.ones(2)
        )
        wide = find_reasonable_step_size(
            Wide().logp_and_grad, np.zeros(2), rng, np.ones(2)
        )
        assert wide > 5 * narrow

    def test_step_clipped_to_sane_range(self):
        rng = np.random.default_rng(1)
        step = find_reasonable_step_size(
            Wide().logp_and_grad, np.zeros(2), rng, np.ones(2) * 1e6
        )
        assert 1e-8 <= step <= 1e3


class TestAdaptationConvergence:
    def test_nuts_acceptance_near_target(self):
        res = run_chains(Wide(), NUTS(target_accept=0.8), n_iterations=600,
                         n_chains=2, seed=0)
        for rate in res.accept_rates:
            assert 0.6 < rate <= 1.0

    def test_mass_adaptation_handles_anisotropic_target(self):
        class Anisotropic(BayesianModel):
            name = "aniso"

            @property
            def params(self):
                return [ParameterSpec("x", 2, init=0.0)]

            def log_joint(self, p):
                scales = np.array([0.1, 10.0])
                return dist.normal_lpdf(p["x"], 0.0, scales)

        res = run_chains(Anisotropic(), NUTS(), n_iterations=900, n_chains=2,
                         seed=1)
        pooled = res.pooled()
        # Both scales recovered despite the 100x conditioning spread.
        assert abs(pooled[:, 0].std() - 0.1) < 0.04
        assert abs(pooled[:, 1].std() - 10.0) < 4.0

    def test_adapt_mass_disabled_still_samples(self):
        res = run_chains(Wide(), NUTS(adapt_mass=False), n_iterations=300,
                         n_chains=2, seed=2)
        assert np.isfinite(res.pooled()).all()

    def test_hmc_mass_refresh_keeps_step_finite(self):
        res = run_chains(Wide(), HMC(n_leapfrog=8), n_iterations=400,
                         n_chains=2, seed=3)
        for chain in res.chains:
            assert np.isfinite(chain.step_size)
            assert chain.step_size > 0

    def test_mh_without_adaptation(self):
        res = run_chains(
            Wide(), MetropolisHastings(proposal_scale=5.0, adapt_scale=False),
            n_iterations=500, n_chains=2, seed=4,
        )
        for chain in res.chains:
            assert chain.step_size == 5.0


class TestDualAveragingNumerics:
    def test_counts_tracked(self):
        da = DualAveraging(0.5)
        for _ in range(7):
            da.update(0.9)
        assert da.count == 7

    def test_extreme_accept_probabilities(self):
        da = DualAveraging(0.5)
        for accept in (0.0, 1.0, 0.0, 1.0):
            step = da.update(accept)
            assert np.isfinite(step) and step > 0

    def test_welford_single_dim(self):
        w = WelfordVariance(1)
        for v in (1.0, 2.0, 3.0, 4.0):
            w.update(np.array([v]))
        assert np.isclose(w.variance(regularize=False)[0],
                          np.var([1, 2, 3, 4], ddof=1))
