"""Design-space exploration: find energy-efficient sampling configurations.

Reproduces the paper's Section VI-B study for one workload: sweep cores x
chains x iterations on Skylake, locate the energy oracle (cheapest
configuration whose posterior still matches ground truth), and show that
convergence detection gets close to it without needing the ground truth.

Run:  python examples/design_space_exploration.py
"""

from repro.arch.platforms import SKYLAKE
from repro.arch.profile import profile_workload
from repro.core.dse import DesignSpaceExplorer
from repro.core.elision import ConvergenceDetector
from repro.inference import NUTS, run_chains
from repro.suite import load_workload

WORKLOAD = "ad"


def main():
    model = load_workload(WORKLOAD, scale=0.5)
    sampler = NUTS(max_tree_depth=6)

    print(f"profiling and sampling {WORKLOAD}...")
    profile = profile_workload(model, calibration_iterations=30, sampler=sampler)
    result = run_chains(model, sampler, n_iterations=300, n_chains=4, seed=2)
    truth = run_chains(model, sampler, n_iterations=600, n_chains=4,
                       seed=1002).pooled(second_half_only=True)

    explorer = DesignSpaceExplorer(
        SKYLAKE, detector=ConvergenceDetector(check_interval=20)
    )
    points = explorer.explore(profile, result, ground_truth=truth)

    print(f"\n{'kind':<9s} {'cores':>5s} {'chains':>6s} {'iters':>6s} "
          f"{'latency s':>10s} {'energy J':>9s} {'KL':>7s}")
    for kind in ("user", "detected", "oracle"):
        for p in explorer.select(points, kind):
            print(f"{p.kind:<9s} {p.n_cores:>5d} {p.n_chains:>6d} "
                  f"{p.iterations:>6d} {p.latency_s:>10.2f} "
                  f"{p.energy_j:>9.0f} {p.kl:>7.3f}")

    saving = explorer.energy_saving_fraction(points)
    print(f"\nenergy saved by convergence detection vs the user setting: "
          f"{100 * saving:.0f}%")
    oracle = explorer.select(points, "oracle")[0]
    print(f"energy oracle uses {oracle.n_chains} chain(s) x "
          f"{oracle.iterations} iterations — unreachable without ground "
          f"truth, which is the paper's point.")


if __name__ == "__main__":
    main()
