"""Unit tests for the gateway building blocks — no sockets needed.

Auth, rate limiting (with an injectable clock), the SSE event broker and
wire format, the JSON views, and the client's transient-retry loop against
a stub HTTP server. The full network round trip lives in test_gateway.py.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.client import (
    GatewayClient,
    GatewayError,
    GatewayUnavailable,
    RateLimitedError,
    UnauthorizedError,
)
from repro.gateway import (
    ApiError,
    BearerAuth,
    EventBroker,
    JobEvent,
    RateLimiter,
    TokenBucket,
    job_view,
    parse_job_spec,
    parse_sse,
    result_view,
    token_label,
)
from repro.gateway.sse import json_safe
from repro.serve import Job, JobSpec, JobState, RetryPolicy
from repro.telemetry.instrument import GATEWAY_RATELIMITED
from repro.telemetry.metrics import MetricsRegistry

SPEC = JobSpec(workload="votes", engine="mh", n_iterations=40, n_chains=2)


class TestTokenLabel:
    def test_hashed_and_stable(self):
        assert token_label("s3cret") == token_label("s3cret")
        assert len(token_label("s3cret")) == 8
        assert "s3cret" not in token_label("s3cret")
        assert token_label("s3cret") != token_label("other")

    def test_anonymous(self):
        assert token_label(None) == "anonymous"


class TestBearerAuth:
    def test_matches_any_configured_token(self):
        auth = BearerAuth(["alpha", "beta"])
        assert auth.authenticate("Bearer alpha") == "alpha"
        assert auth.authenticate("bearer beta") == "beta"  # scheme is ci
        assert len(auth) == 2

    def test_rejects_wrong_or_malformed_credentials(self):
        auth = BearerAuth(["alpha"])
        assert auth.authenticate(None) is None
        assert auth.authenticate("") is None
        assert auth.authenticate("Bearer wrong") is None
        assert auth.authenticate("Basic alpha") is None
        assert auth.authenticate("alpha") is None  # no scheme

    def test_empty_token_set_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BearerAuth(["", "   "])


class TestRateLimiter:
    def test_burst_then_paced(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=2, clock=lambda: clock[0])
        assert limiter.check("t") is None
        assert limiter.check("t") is None
        wait = limiter.check("t")
        assert wait is not None and wait == pytest.approx(1.0)
        clock[0] = 1.0  # one token accrued
        assert limiter.check("t") is None
        assert limiter.check("t") is not None

    def test_tokens_have_independent_buckets(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: clock[0])
        assert limiter.check("a") is None
        assert limiter.check("a") is not None
        assert limiter.check("b") is None  # b's bucket untouched
        assert limiter.check(None) is None  # anonymous is its own tenant

    def test_bucket_never_exceeds_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0, now=0.0)
        assert bucket.acquire(1000.0) == 0.0  # long idle: still capped at 2
        assert bucket.acquire(1000.0) == 0.0
        assert bucket.acquire(1000.0) > 0.0

    def test_rejections_counted_per_token_label(self):
        registry = MetricsRegistry()
        clock = [0.0]
        limiter = RateLimiter(
            rate=1.0, burst=1, registry=registry, clock=lambda: clock[0]
        )
        limiter.check("s3cret")
        limiter.check("s3cret")
        label = token_label("s3cret")
        assert registry.counter_value(
            GATEWAY_RATELIMITED, {"token": label}
        ) == 1.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            RateLimiter(rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            RateLimiter(rate=1.0, burst=0)


class TestEventBroker:
    def test_late_subscriber_replays_history(self):
        broker = EventBroker()
        broker.publish("j", JobEvent("state", {"state": "queued"}))
        broker.publish("j", JobEvent("rhat", {"kept": 20, "rhat": 1.5}))
        sub = broker.subscribe("j")
        assert sub.get_nowait().data["state"] == "queued"
        assert sub.get_nowait().data["rhat"] == 1.5

    def test_terminal_event_closes_the_stream(self):
        broker = EventBroker()
        sub = broker.subscribe("j")
        broker.publish("j", JobEvent("state", {"state": "done"}, terminal=True))
        assert sub.get_nowait().terminal
        assert sub.get_nowait() is None  # sentinel: stream over
        # Publishing after close is a no-op; late subscribers still get
        # the full history plus the sentinel.
        assert broker.publish("j", JobEvent("state", {"state": "zombie"})) == 0
        late = broker.subscribe("j")
        assert late.get_nowait().data["state"] == "done"
        assert late.get_nowait() is None

    def test_rhat_trace_collects_checkpoints(self):
        broker = EventBroker()
        broker.publish("j", JobEvent("state", {"state": "running"}))
        broker.publish("j", JobEvent("rhat", {"kept": 20, "rhat": 2.0}))
        broker.publish("j", JobEvent("rhat", {"kept": 40, "rhat": 1.05}))
        assert broker.rhat_trace("j") == [(20, 2.0), (40, 1.05)]
        assert broker.rhat_trace("unknown") == []

    def test_history_limit_drops_overflow(self):
        broker = EventBroker(history_limit=2)
        for kept in (10, 20, 30):
            broker.publish("j", JobEvent("rhat", {"kept": kept, "rhat": 9.0}))
        assert [e.data["kept"] for e in broker.history("j")] == [10, 20]

    def test_unsubscribe_stops_delivery(self):
        broker = EventBroker()
        sub = broker.subscribe("j")
        broker.unsubscribe("j", sub)
        broker.publish("j", JobEvent("state", {"state": "running"}))
        assert sub.empty()


class TestWireFormat:
    def test_render_parse_roundtrip(self):
        event = JobEvent("rhat", {"job_id": "ab", "kept": 40, "rhat": 1.52})
        lines = event.render().decode("utf-8").splitlines(keepends=True)
        assert parse_sse(lines) == ("rhat", event.data)

    def test_keepalive_comments_are_skipped(self):
        lines = [": keep-alive\n", "\n", "event: state\n",
                 'data: {"state": "done"}\n', "\n"]
        assert parse_sse(lines) == ("state", {"state": "done"})

    def test_json_safe_replaces_nonfinite(self):
        data = {"rhat": float("inf"), "trace": [1.0, float("nan")],
                "nested": {"v": float("-inf")}, "n": 3, "s": "x"}
        safe = json_safe(data)
        assert safe == {"rhat": None, "trace": [1.0, None],
                        "nested": {"v": None}, "n": 3, "s": "x"}
        json.dumps(safe)  # strict-JSON serializable

    def test_rendered_infinity_is_null_on_the_wire(self):
        event = JobEvent("rhat", {"kept": 20, "rhat": float("inf")})
        assert b"Infinity" not in event.render()
        assert parse_sse(
            event.render().decode("utf-8").splitlines(keepends=True)
        ) == ("rhat", {"kept": 20, "rhat": None})


class TestViews:
    def test_job_view_carries_live_rhat(self):
        job = Job(SPEC)
        view = job_view(job, [(20, 2.0), (40, 1.08)])
        assert view["state"] == "queued"
        assert not view["terminal"]
        assert view["rhat"] == {"kept": 40, "value": 1.08}
        assert len(view["rhat_trace"]) == 2
        assert view["spec"] == SPEC.to_dict()

    def test_result_view_409_until_terminal(self):
        job = Job(SPEC)
        with pytest.raises(ApiError) as info:
            result_view(job)
        assert info.value.status == 409
        job.transition(JobState.RUNNING)
        job.transition(JobState.FAILED)
        with pytest.raises(ApiError, match="failed"):
            result_view(job)  # terminal but no result

    def test_job_and_result_views_carry_provenance(self):
        from repro.amortize import Provenance

        job = Job(SPEC)
        assert job_view(job)["provenance"] is None
        assert job_view(job)["mode"] == "exact"
        job.provenance = Provenance(
            mode="checked", tier="exact", k_hat=1.2, k_hat_threshold=0.7,
            guide_id="abc123", escalated=True,
        )
        view = job_view(job)["provenance"]
        assert view["tier"] == "exact" and view["escalated"]
        assert view["k_hat"] == 1.2 and view["guide_id"] == "abc123"

    def test_parse_job_spec_rejects_bad_bodies(self):
        assert parse_job_spec(SPEC.to_dict()) == SPEC
        with pytest.raises(ApiError) as info:
            parse_job_spec(["not", "a", "dict"])
        assert info.value.status == 400
        assert info.value.code == "invalid_body"
        with pytest.raises(ApiError, match="invalid job spec"):
            parse_job_spec({"workload": "votes", "n_iterations": 1})

    def test_parse_job_spec_unknown_field_is_structured(self):
        with pytest.raises(ApiError) as info:
            parse_job_spec({"workload": "votes", "no_such_field": 1,
                            "nor_this": 2})
        err = info.value
        assert err.status == 400
        assert err.code == "unknown_field"
        assert err.detail["fields"] == ["no_such_field", "nor_this"]
        assert "workload" in err.detail["known_fields"]
        body = err.body()
        assert body["code"] == "unknown_field"
        assert body["detail"]["fields"] == ["no_such_field", "nor_this"]

    def test_parse_job_spec_unknown_mode_is_structured(self):
        with pytest.raises(ApiError) as info:
            parse_job_spec({"workload": "votes", "mode": "turbo"})
        err = info.value
        assert err.status == 400
        assert err.code == "invalid_mode"
        assert err.detail == {
            "mode": "turbo", "modes": ["fast", "checked", "exact"]
        }

    def test_api_error_body_omits_unset_extras(self):
        assert ApiError(404, "gone").body() == {"error": "gone"}


class _FlakyHandler(BaseHTTPRequestHandler):
    """Fails with 500 until `failures` is exhausted, then returns JSON."""

    failures = 0
    requests_seen = 0

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self):
        cls = type(self)
        cls.requests_seen += 1
        if cls.failures > 0:
            cls.failures -= 1
            body = json.dumps({"error": "transient hiccup"}).encode()
            self.send_response(500)
        elif self.path == "/v1/denied":
            body = json.dumps({"error": "missing token"}).encode()
            self.send_response(401)
        elif self.path == "/v1/shed":
            body = json.dumps({"error": "slow down"}).encode()
            self.send_response(429)
            self.send_header("Retry-After", "7")
        elif self.path == "/v1/badreq":
            body = json.dumps({
                "error": "unknown serving mode 'turbo'",
                "code": "invalid_mode",
                "detail": {"mode": "turbo",
                           "modes": ["fast", "checked", "exact"]},
            }).encode()
            self.send_response(400)
        else:
            body = json.dumps({"ok": True}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture
def flaky_server():
    httpd = HTTPServer(("127.0.0.1", 0), _FlakyHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    _FlakyHandler.failures = 0
    _FlakyHandler.requests_seen = 0
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        thread.join(timeout=5)
        httpd.server_close()


FAST_RETRIES = RetryPolicy(max_attempts=3, base_backoff=0.0, max_backoff=0.0)


class TestClientRetries:
    def test_5xx_retried_until_success(self, flaky_server):
        _FlakyHandler.failures = 2
        client = GatewayClient(flaky_server, retry_policy=FAST_RETRIES)
        assert client._json("GET", "/v1/ok") == {"ok": True}
        assert _FlakyHandler.requests_seen == 3

    def test_5xx_exhausts_into_gateway_unavailable(self, flaky_server):
        _FlakyHandler.failures = 99
        client = GatewayClient(flaky_server, retry_policy=FAST_RETRIES)
        with pytest.raises(GatewayUnavailable):
            client._json("GET", "/v1/ok")
        assert _FlakyHandler.requests_seen == 3  # max_attempts, no more

    def test_4xx_is_poison_no_retry(self, flaky_server):
        client = GatewayClient(flaky_server, retry_policy=FAST_RETRIES)
        with pytest.raises(UnauthorizedError):
            client._json("GET", "/v1/denied")
        assert _FlakyHandler.requests_seen == 1
        with pytest.raises(RateLimitedError) as info:
            client._json("GET", "/v1/shed")
        assert info.value.retry_after == 7.0
        assert info.value.status == 429

    def test_400_maps_to_typed_invalid_request(self, flaky_server):
        from repro.client import InvalidRequestError

        client = GatewayClient(flaky_server, retry_policy=FAST_RETRIES)
        with pytest.raises(InvalidRequestError) as info:
            client._json("GET", "/v1/badreq")
        err = info.value
        assert err.status == 400
        assert err.code == "invalid_mode"
        assert err.detail["modes"] == ["fast", "checked", "exact"]
        assert _FlakyHandler.requests_seen == 1  # poison: no retry

    def test_connection_refused_raises_unavailable(self):
        client = GatewayClient(
            "http://127.0.0.1:9", retry_policy=FAST_RETRIES, timeout=0.5
        )
        with pytest.raises(GatewayUnavailable, match="unreachable"):
            client.healthz()

    def test_submit_argument_shapes(self, flaky_server):
        client = GatewayClient(flaky_server, retry_policy=FAST_RETRIES)
        with pytest.raises(TypeError, match="JobSpec or a name"):
            client.submit(SPEC, n_iterations=99)
        with pytest.raises(TypeError):
            client.submit(3.14)

    def test_error_hierarchy(self):
        from repro.client import InvalidRequestError

        assert issubclass(UnauthorizedError, GatewayError)
        assert issubclass(RateLimitedError, GatewayError)
        assert issubclass(GatewayUnavailable, GatewayError)
        assert issubclass(InvalidRequestError, GatewayError)


class TestBackoffJitter:
    """The client's retry sleeps are jittered downward (satellite of the
    fleet PR): N clients that saw the same failure must not retry in
    lockstep, and no jittered sleep may exceed the unjittered schedule."""

    POLICY = RetryPolicy(max_attempts=4, base_backoff=0.1, max_backoff=5.0)

    def _recorded_sleeps(self, monkeypatch, client):
        sleeps = []
        monkeypatch.setattr("time.sleep", sleeps.append)
        with pytest.raises(GatewayUnavailable):
            client.healthz()
        return sleeps

    def test_zero_jitter_reproduces_the_exact_schedule(self, monkeypatch):
        client = GatewayClient(
            "http://127.0.0.1:9", retry_policy=self.POLICY,
            timeout=0.5, backoff_jitter=0.0,
        )
        sleeps = self._recorded_sleeps(monkeypatch, client)
        expected = [
            self.POLICY.backoff("transient", n)
            for n in range(1, self.POLICY.max_attempts)
        ]
        assert sleeps == expected

    def test_jittered_sleeps_stay_within_bounds(self, monkeypatch):
        import random

        client = GatewayClient(
            "http://127.0.0.1:9", retry_policy=self.POLICY, timeout=0.5,
            backoff_jitter=0.5, rng=random.Random(7),
        )
        sleeps = self._recorded_sleeps(monkeypatch, client)
        assert len(sleeps) == self.POLICY.max_attempts - 1
        for attempt, slept in enumerate(sleeps, start=1):
            full = self.POLICY.backoff("transient", attempt)
            assert 0.5 * full <= slept <= full
            # Vanishingly unlikely to land exactly on either bound.
            assert slept != full

    def test_seeded_clients_desynchronize(self, monkeypatch):
        import random

        schedules = []
        for seed in range(5):
            client = GatewayClient(
                "http://127.0.0.1:9", retry_policy=self.POLICY, timeout=0.5,
                backoff_jitter=0.5, rng=random.Random(seed),
            )
            schedules.append(
                tuple(self._recorded_sleeps(monkeypatch, client))
            )
        # Every client slept a different schedule: the herd is broken.
        assert len(set(schedules)) == len(schedules)

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            GatewayClient("http://127.0.0.1:9", backoff_jitter=1.5)
        with pytest.raises(ValueError, match="backoff_jitter"):
            GatewayClient("http://127.0.0.1:9", backoff_jitter=-0.1)
