"""Random-walk Metropolis-Hastings — Algorithm 1 of the paper.

Included both as the pedagogical baseline the paper uses to explain the
computation structure (sequential inner sampling loop, embarrassingly
parallel chains) and as a gradient-free fallback engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inference.chain import restore_sampler_prefix
from repro.inference.results import ChainResult, IterationHook, StateCapture


@dataclass
class MetropolisHastings:
    """Gaussian random-walk MH with optional warmup scale adaptation."""

    proposal_scale: float = 0.5
    target_accept: float = 0.234
    adapt_scale: bool = True

    def sample_chain(
        self,
        model,
        x0: np.ndarray,
        n_iterations: int,
        rng: np.random.Generator,
        n_warmup: int | None = None,
        iteration_hook: IterationHook = None,
        state_capture: StateCapture | None = None,
        resume_state: dict | None = None,
    ) -> ChainResult:
        if n_warmup is None:
            n_warmup = n_iterations // 2
        dim = x0.shape[0]

        samples = np.empty((n_iterations, dim))
        logps = np.empty(n_iterations)
        work = np.ones(n_iterations)  # one density evaluation per iteration

        if resume_state is not None:
            start = restore_sampler_prefix(
                resume_state, "mh", rng,
                samples=samples, logps=logps,
            )
            x = np.array(resume_state["x"], dtype=float)
            logp = float(resume_state["logp"])
            scale = float(resume_state["scale"])
            accepts = int(resume_state["accepts"])
        else:
            start = 0
            scale = self.proposal_scale
            x = np.asarray(x0, dtype=float).copy()
            logp = model.logp(x)
            accepts = 0

        if state_capture is not None:
            def snapshot() -> dict:
                return {
                    "engine": "mh",
                    "t": t,
                    "samples": samples[:t + 1].copy(),
                    "logps": logps[:t + 1].copy(),
                    "work": work[:t + 1].copy(),
                    "x": x.copy(),
                    "logp": logp,
                    "rng": rng.bit_generator.state,
                    "scale": scale,
                    "accepts": accepts,
                }
            state_capture.bind(snapshot)

        hook_wants_stats = getattr(iteration_hook, "wants_stats", False)
        for t in range(start, n_iterations):
            # Line 4 of Algorithm 1: draw from the proposal density q.
            proposal = x + scale * rng.normal(size=dim)
            logp_prop = model.logp(proposal)
            # Lines 5-12: Metropolis-Hastings accept/reject.
            log_r = logp_prop - logp
            if np.log(rng.uniform()) < min(log_r, 0.0):
                x, logp = proposal, logp_prop
                accepts += 1
                accepted = 1.0
            else:
                accepted = 0.0

            samples[t] = x
            logps[t] = logp

            if self.adapt_scale and t < n_warmup:
                # Robbins-Monro drift of the proposal scale toward the
                # asymptotically optimal random-walk acceptance rate.
                scale *= np.exp((accepted - self.target_accept) / np.sqrt(t + 1.0))
                scale = float(np.clip(scale, 1e-6, 1e3))

            if iteration_hook is not None:
                if hook_wants_stats:
                    keep_going = iteration_hook(t, samples[t], {
                        "work": 1.0,
                        "accept": accepted,
                        "step_size": scale,
                    })
                else:
                    keep_going = iteration_hook(t, samples[t])
                if not keep_going:
                    n_iterations = t + 1
                    break

        return ChainResult(
            samples=samples[:n_iterations],
            logps=logps[:n_iterations],
            work_per_iteration=work[:n_iterations],
            n_warmup=n_warmup,
            accept_rate=accepts / n_iterations,
            step_size=scale,
        )
