"""One-shot Markdown report over the whole reproduction.

``python -m repro report -o report.md`` runs the characterization,
scheduling, and elision pipeline on every workload (re-using a
:class:`~repro.core.pipeline.SuiteRunner` disk cache when given) and writes
a self-contained Markdown summary — the README-sized version of what the
figure benches print.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.machine import MachineModel
from repro.arch.platforms import BROADWELL, SKYLAKE, Platform
from repro.core.elision import ConvergenceDetector
from repro.core.pipeline import SuiteRunner, evaluate_overall
from repro.suite import table_one, workload_names


def _table(header: List[str], rows: List[List[str]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines)


def _workload_table() -> str:
    rows = [
        [info.name, info.model_family, str(info.default_iterations)]
        for info in table_one()
    ]
    return _table(["workload", "model", "user iterations"], rows)


def _platform_table() -> str:
    rows = []
    for platform in (SKYLAKE, BROADWELL):
        rows.append([
            platform.codename, platform.processor, str(platform.cores),
            f"{platform.turbo_ghz:.1f} GHz", f"{platform.llc_mb:.0f} MB",
            f"{platform.tdp_w:.0f} W",
        ])
    return _table(["platform", "processor", "cores", "turbo", "LLC", "TDP"], rows)


def _characterization_table(runner: SuiteRunner, platform: Platform) -> str:
    machine = MachineModel(platform)
    rows = []
    for name in workload_names():
        profile = runner.profile(name)
        counters = machine.counters(profile, n_cores=4, n_chains=4)
        rows.append([
            name,
            f"{profile.modeled_data_bytes:,d}",
            f"{profile.working_set_bytes / 1e6:.2f} MB",
            f"{counters.ipc:.2f}",
            f"{counters.llc_mpki:.2f}",
            f"{counters.bandwidth_mbs:,.0f}",
        ])
    return _table(
        ["workload", "data bytes", "WS/chain", "IPC@4c", "LLC MPKI@4c",
         "BW MB/s"],
        rows,
    )


def _speedup_table(runner: SuiteRunner) -> tuple[str, float]:
    results = evaluate_overall(runner, detector=ConvergenceDetector())
    rows = []
    for row in results:
        rows.append([
            row.name, row.platform,
            f"{row.baseline_seconds:.1f}", f"{row.optimized_seconds:.1f}",
            f"{row.speedup:.2f}x",
            str(row.converged_iteration),
            f"{100 * row.iterations_saved_fraction:.0f}%",
        ])
    average = float(np.mean([r.speedup for r in results]))
    return _table(
        ["workload", "platform", "baseline s", "optimized s", "speedup",
         "converged@", "iters saved"],
        rows,
    ), average


def generate_report(
    runner: Optional[SuiteRunner] = None,
    title: str = "BayesSuite reproduction report",
) -> str:
    """Build the full Markdown report (runs the suite if not cached)."""
    runner = runner or SuiteRunner()
    speedups, average = _speedup_table(runner)
    sections = [
        f"# {title}",
        "",
        "Reproduction of *Demystifying Bayesian Inference Workloads* "
        "(ISPASS 2019). Latencies are machine-model projections at the "
        "workloads' original iteration budgets; see DESIGN.md.",
        "",
        "## Workloads (Table I)",
        "",
        _workload_table(),
        "",
        "## Platforms (Table II)",
        "",
        _platform_table(),
        "",
        "## Characterization at 4 cores (Skylake)",
        "",
        _characterization_table(runner, SKYLAKE),
        "",
        "## Scheduling + elision (Figure 8)",
        "",
        speedups,
        "",
        f"**Average speedup over the Broadwell baseline: {average:.2f}x** "
        "(paper: 5.8x).",
        "",
    ]
    return "\n".join(sections)


def write_report(path: str, runner: Optional[SuiteRunner] = None) -> str:
    """Generate and write the report; returns the path."""
    content = generate_report(runner)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return path
