"""GuideStore — trained, reusable ADVI guides for amortized serving.

The amortization bet (ROADMAP item 3, "Amortized Bayesian Workflow"): at
traffic scale, most requests re-fit a handful of model families on
same-shape data, so the expensive part of an approximate answer — fitting
the variational guide — can be paid once per *family* and reused across
requests. The store keys guides by

    (model family, data-shape signature, model-code version)

deliberately excluding the dataset seed and the request seed: a guide
trained on one dataset is a *candidate* answer for fresh same-shape data,
and the PSIS gate (:mod:`repro.amortize.psis`) decides per request whether
the candidate is close enough. The model-code version is a digest of the
model's ``log_joint`` bytecode and parameter declarations, so editing a
model silently invalidates every guide trained against the old density —
the stale guide's key simply never matches again.

Persistence mirrors :class:`~repro.serve.store.ResultStore`: pickled
records under a directory, written atomically (tmp + rename) so a crash
mid-write never leaves a torn guide, corrupt files skipped with a warning
(training again is always safe).

Training is deterministic — the training RNG is derived from the guide key
and the store's ``train_seed`` — so every replica that trains the same
guide gets bit-identical parameters, and a retrained guide after a cache
wipe reproduces exactly. New guides for a family warm-start from the
family's most recent guide when the dimension matches (fresh shapes
converge faster from a previously fitted posterior than from the prior
mean).
"""

from __future__ import annotations

import hashlib
import pickle
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.inference.advi import ADVI, AdviResult


def model_version(model) -> str:
    """Digest of the model *code* a guide was trained against.

    Covers the ``log_joint`` bytecode (nested code objects included), the
    parameter declarations (name, size, transform class), and the model
    class name. Editing any of those changes the density the guide
    approximates, so the digest is part of the guide key: stale guides are
    invalidated by never being looked up again.
    """
    hasher = hashlib.sha256()
    hasher.update(type(model).__name__.encode())

    def feed(code) -> None:
        hasher.update(code.co_code)
        for const in code.co_consts:
            if hasattr(const, "co_code"):
                feed(const)
            else:
                hasher.update(repr(const).encode())

    feed(type(model).log_joint.__code__)
    for spec in model.params:
        hasher.update(
            f"{spec.name}:{spec.size}:{type(spec.transform).__name__}".encode()
        )
    return hasher.hexdigest()[:16]


def shape_signature(model) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """Canonical (name, shape) signature of the model's observed data."""
    return tuple(
        (name, tuple(arr.shape))
        for name, arr in sorted(model.data_arrays.items())
    )


def guide_key(model, train_seed: int = 0) -> str:
    """Stable identity of the guide serving ``model``'s family and shape."""
    signature = ";".join(
        f"{name}{list(shape)}" for name, shape in shape_signature(model)
    )
    blob = f"{model.name}|{signature}|{model_version(model)}|{train_seed}"
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class GuideRecord:
    """One trained guide plus the metadata that scopes its reuse."""

    guide_id: str
    family: str
    data_shape: Tuple[Tuple[str, Tuple[int, ...]], ...]
    model_version: str
    advi: AdviResult
    #: Wall seconds spent fitting (0.0 for injected/synthetic guides).
    train_seconds: float = 0.0
    #: ADVI iterations used for the fit.
    train_iterations: int = 0
    #: guide_id of the prior fit this one warm-started from, if any.
    warm_started_from: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def dim(self) -> int:
        return int(self.advi.mu.size)


class GuideStore:
    """Trains, caches, and persists ADVI guides keyed by family and shape."""

    def __init__(
        self,
        directory: Optional[str] = None,
        advi: Optional[ADVI] = None,
        train_seed: int = 0,
    ) -> None:
        self.directory = Path(directory) if directory else None
        #: Hyperparameters every trained guide uses. The default budget is
        #: deliberately modest: training is the amortized cost, but the
        #: first request for a family still waits on it.
        self.advi = advi if advi is not None else ADVI(n_iterations=2000)
        self.train_seed = train_seed
        self._records: Dict[str, GuideRecord] = {}
        #: family -> guide_id of the most recently stored guide (the warm
        #: start donor for new shapes of the same family).
        self._family_latest: Dict[str, str] = {}
        self._scanned_disk = False

    # -- lookup ----------------------------------------------------------------

    def key_for(self, model) -> str:
        return guide_key(model, self.train_seed)

    def __len__(self) -> int:
        self._scan_disk()
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def get(self, key: str) -> Optional[GuideRecord]:
        """The cached record, or None (corrupt disk files are skipped)."""
        record = self._records.get(key)
        if record is not None:
            return record
        path = self._path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as handle:
                    record = pickle.load(handle)
            except Exception as exc:
                warnings.warn(
                    f"skipping corrupt guide {path}: {exc}; "
                    f"the guide will be retrained",
                    RuntimeWarning,
                )
                return None
            if not isinstance(record, GuideRecord):
                warnings.warn(
                    f"skipping guide {path}: unexpected payload "
                    f"({type(record).__name__}); the guide will be retrained",
                    RuntimeWarning,
                )
                return None
            self._remember(record)
            return record
        return None

    def get_for(self, model) -> Optional[GuideRecord]:
        return self.get(self.key_for(model))

    # -- training --------------------------------------------------------------

    def get_or_train(self, model) -> Tuple[GuideRecord, bool]:
        """The guide for ``model``'s (family, shape, version), training on
        first use. Returns ``(record, trained)`` — ``trained`` is True when
        this call paid the fit."""
        key = self.key_for(model)
        record = self.get(key)
        if record is not None:
            return record, False
        return self.train(model), True

    def train(self, model) -> GuideRecord:
        """Fit a fresh guide for ``model`` and persist it.

        Deterministic: the training RNG is seeded from the guide key, so
        any process that trains this guide produces identical parameters.
        Warm-starts from the family's latest same-dimension guide.
        """
        key = self.key_for(model)
        rng = np.random.default_rng(
            np.random.SeedSequence((self.train_seed, int(key, 16)))
        )
        x0 = None
        warm_from = None
        donor = self._warm_start_donor(model.name, model.dim)
        if donor is not None:
            x0 = donor.advi.mu.copy()
            warm_from = donor.guide_id
        started = time.perf_counter()
        fitted = self.advi.fit(model, rng, x0=x0)
        record = GuideRecord(
            guide_id=key,
            family=model.name,
            data_shape=shape_signature(model),
            model_version=model_version(model),
            advi=fitted,
            train_seconds=time.perf_counter() - started,
            train_iterations=self.advi.n_iterations,
            warm_started_from=warm_from,
        )
        self.put(record)
        return record

    def put(self, record: GuideRecord) -> None:
        """Cache (and atomically persist) a record under its guide_id."""
        self._remember(record)
        path = self._path(record.guide_id)
        if path is not None:
            from repro.resilience import chaos

            chaos.check_write("guide")
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(record, handle)
            tmp.replace(path)

    # -- internals -------------------------------------------------------------

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.pkl"

    def _remember(self, record: GuideRecord) -> None:
        self._records[record.guide_id] = record
        self._family_latest[record.family] = record.guide_id

    def _warm_start_donor(self, family: str, dim: int) -> Optional[GuideRecord]:
        self._scan_disk()
        donor_id = self._family_latest.get(family)
        if donor_id is None:
            return None
        donor = self._records.get(donor_id)
        if donor is None or donor.dim != dim:
            return None
        return donor

    def _scan_disk(self) -> None:
        """Load persisted records once (guides are dim-sized, i.e. tiny)."""
        if self._scanned_disk or self.directory is None:
            return
        self._scanned_disk = True
        if not self.directory.exists():
            return
        # mtime order so `_family_latest` means "most recently stored"
        # across restarts, not "lowest key hash".
        for path in sorted(
            self.directory.glob("*.pkl"), key=lambda p: p.stat().st_mtime
        ):
            if path.stem not in self._records:
                self.get(path.stem)
