"""Statistical exactness: NUTS must recover closed-form conjugate posteriors.

The bit-identity battery proves compiled tapes equal interpretation; these
tests prove the whole stack — autodiff, compiled replay, transforms, NUTS —
equals *math*. Two conjugate setups with known posteriors:

* normal–normal: known-variance Gaussian likelihood, Gaussian prior on the
  mean, posterior N(mu_n, sigma_n^2) in closed form;
* beta–binomial: Bernoulli trials with a Beta prior, posterior
  Beta(alpha + k, beta + n - k).

Posterior means and standard deviations must match the analytic values
within Monte-Carlo-standard-error-scaled tolerances (draws estimate a mean
to ~sd/sqrt(ESS)). Long chains make the MCSE small, so these run nightly
(``slow`` marker), keeping tier-1 fast.
"""

import numpy as np
import pytest

from repro.autodiff import suffstats
from repro.diagnostics.ess import effective_sample_size
from repro.inference.chain import run_chains
from repro.inference.nuts import NUTS
from repro.models import BayesianModel, ParameterSpec
from repro.models import distributions as dist
from repro.models.transforms import Interval

pytestmark = pytest.mark.slow

N_ITERATIONS = 4000
N_CHAINS = 4
SEED = 20260806


class NormalNormal(BayesianModel):
    """y_i ~ N(mu, sigma^2) with sigma known; mu ~ N(mu0, tau0^2)."""

    name = "normal_normal"
    mu0, tau0, sigma = 1.5, 2.0, 1.2

    def __init__(self) -> None:
        super().__init__()
        rng = np.random.default_rng(42)
        self.add_data(y=rng.normal(3.0, self.sigma, size=25))

    @property
    def params(self):
        return [ParameterSpec("mu", 1, init=0.0)]

    def log_joint(self, p):
        return dist.normal_lpdf(
            self.data("y"), p["mu"], self.sigma
        ) + dist.normal_lpdf(p["mu"], self.mu0, self.tau0)

    def analytic_posterior(self):
        y = self.data("y")
        precision = 1.0 / self.tau0 ** 2 + y.size / self.sigma ** 2
        variance = 1.0 / precision
        mean = variance * (
            self.mu0 / self.tau0 ** 2 + y.sum() / self.sigma ** 2
        )
        return mean, np.sqrt(variance)


class BetaBinomial(BayesianModel):
    """k successes in n Bernoulli trials; p ~ Beta(alpha0, beta0)."""

    name = "beta_binomial"
    alpha0, beta0 = 2.0, 3.0

    def __init__(self) -> None:
        super().__init__()
        rng = np.random.default_rng(7)
        self.add_data(y=(rng.uniform(size=40) < 0.35).astype(float))

    @property
    def params(self):
        return [ParameterSpec("p", 1, transform=Interval(0.0, 1.0), init=0.5)]

    def log_joint(self, p):
        y = self.data("y")
        total = dist.beta_lpdf(p["p"], self.alpha0, self.beta0)
        # Bernoulli likelihood written directly against the probability.
        from repro.autodiff import ops

        k = float(y.sum())
        n = float(y.size)
        return total + ops.sum(
            k * ops.log(p["p"]) + (n - k) * ops.log(1.0 - p["p"])
        )

    def analytic_posterior(self):
        y = self.data("y")
        a = self.alpha0 + y.sum()
        b = self.beta0 + y.size - y.sum()
        mean = a / (a + b)
        sd = np.sqrt(a * b / ((a + b) ** 2 * (a + b + 1.0)))
        return mean, sd


def _constrained_draws(model, result):
    kept = []
    for chain in result.chains:
        half = chain.samples[chain.samples.shape[0] // 2:]
        kept.append(
            np.array([
                model.constrain(x)[model.params[0].name][0] for x in half
            ])
        )
    return np.stack(kept)  # (chains, draws)


@pytest.mark.parametrize("model_cls", [NormalNormal, BetaBinomial])
def test_nuts_recovers_conjugate_posterior(model_cls):
    model = model_cls()
    true_mean, true_sd = model.analytic_posterior()

    result = run_chains(
        model, NUTS(), n_iterations=N_ITERATIONS, n_chains=N_CHAINS,
        seed=SEED,
    )
    draws = _constrained_draws(model, result)
    flat = draws.reshape(-1)

    ess = max(
        sum(effective_sample_size(draws[c]) for c in range(draws.shape[0])),
        10.0,
    )
    mcse_mean = true_sd / np.sqrt(ess)
    # SE of the sd estimate for an approximately normal posterior.
    mcse_sd = true_sd * np.sqrt(0.5 / ess)

    sample_mean = flat.mean()
    sample_sd = flat.std(ddof=1)

    assert abs(sample_mean - true_mean) < 4.0 * mcse_mean, (
        f"{model.name}: posterior mean {sample_mean:.5f} vs analytic "
        f"{true_mean:.5f} (ESS={ess:.0f}, 4*MCSE={4 * mcse_mean:.5f})"
    )
    assert abs(sample_sd - true_sd) < 5.0 * mcse_sd, (
        f"{model.name}: posterior sd {sample_sd:.5f} vs analytic "
        f"{true_sd:.5f} (ESS={ess:.0f}, 5*MCSE={5 * mcse_sd:.5f})"
    )

    # The sampler must have run on the compiled path for these checks to
    # cover it.
    stats = model.tape_stats()
    assert stats is not None and stats["replays"] > 0


class LargeNormalNormal(NormalNormal):
    """The same conjugate setup at N = 10^5 observations.

    At this size the sufficient-statistics rewrite engages on its own
    replay-cost model (no forcing): the likelihood collapses to the
    (Σy, Σy², n) statistics and replay cost is O(parameters). The closed
    form makes this the sharpest end-to-end check the rewrite has — the
    posterior sd is ~4e-3, so a wrong folded constant moves the recovered
    mean by many MCSEs.
    """

    name = "normal_normal_large"
    n_obs = 100_000

    def __init__(self) -> None:
        BayesianModel.__init__(self)
        rng = np.random.default_rng(314)
        self.add_data(y=rng.normal(3.0, self.sigma, size=self.n_obs))


def test_nuts_recovers_conjugate_posterior_large_n_suffstats():
    model = LargeNormalNormal()
    true_mean, true_sd = model.analytic_posterior()

    with suffstats.override(True):
        result = run_chains(
            model, NUTS(), n_iterations=2000, n_chains=2, seed=SEED,
        )
        stats = model.tape_stats()

    # The rewrite must have engaged without forcing — that is the point of
    # the large-N regime — and never been demoted mid-run.
    assert stats is not None and stats["replays"] > 0
    assert stats["suffstats_active"] == 1, stats
    assert stats["suffstats_folded_ops"] > 0, stats
    assert stats["suffstats_demotions"] == 0, stats
    assert stats["fallbacks"] == 0, stats

    draws = _constrained_draws(model, result)
    flat = draws.reshape(-1)
    ess = max(
        sum(effective_sample_size(draws[c]) for c in range(draws.shape[0])),
        10.0,
    )
    mcse_mean = true_sd / np.sqrt(ess)
    mcse_sd = true_sd * np.sqrt(0.5 / ess)

    sample_mean = flat.mean()
    sample_sd = flat.std(ddof=1)
    assert abs(sample_mean - true_mean) < 4.0 * mcse_mean, (
        f"large-N: posterior mean {sample_mean:.6f} vs analytic "
        f"{true_mean:.6f} (ESS={ess:.0f}, 4*MCSE={4 * mcse_mean:.6f})"
    )
    assert abs(sample_sd - true_sd) < 5.0 * mcse_sd, (
        f"large-N: posterior sd {sample_sd:.6f} vs analytic "
        f"{true_sd:.6f} (ESS={ess:.0f}, 5*MCSE={5 * mcse_sd:.6f})"
    )
