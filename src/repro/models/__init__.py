"""Probabilistic modeling layer: distributions, transforms, and the model API.

This is the reproduction's analogue of the Stan modeling language runtime.
A :class:`~repro.models.model.BayesianModel` declares named, possibly
constrained parameters and a log joint density written against
``repro.autodiff``; the base class provides the flat unconstrained-vector
interface (``logp_and_grad``) consumed by the samplers, with change-of-
variable Jacobians applied automatically.
"""

from repro.models.model import BayesianModel, ParameterSpec
from repro.models import distributions, transforms

__all__ = ["BayesianModel", "ParameterSpec", "distributions", "transforms"]
