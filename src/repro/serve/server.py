"""The inference job service: submission, placement, execution, elision.

:class:`InferenceServer` ties the subsystem together. A submitted
:class:`~repro.serve.job.JobSpec` is first checked against the result store
(deterministic execution makes every stored result authoritative — repeat
traffic costs nothing), then admitted to the priority queue. Draining the
queue runs each job through the paper's full optimization story, now as a
service rather than an offline replay:

1. **Placement** — the workload is profiled once, its simulated 4-core LLC
   MPKI becomes a characterization point, and the
   :class:`~repro.core.predictor.LlcMissPredictor` (refit as points accrue)
   drives the :class:`~repro.core.scheduler.PlatformScheduler` placement
   rule: predicted-LLC-bound jobs go to the big-cache platform, the rest to
   the fast one. Until two distinct workloads have been seen the fallback
   rule places directly on the simulated MPKI.
2. **Parallel execution** — chains are sharded across the
   :class:`~repro.serve.workers.ChainWorkerPool`, bit-identical to the
   sequential driver.
3. **Mid-run elision** — streamed draws feed a
   :class:`~repro.serve.monitor.ConvergenceMonitor`; on detection the stop
   iteration is broadcast and the job ends in state ``CONVERGED`` with only
   the iterations it actually needed.

Failed attempts flow through a :class:`RetryPolicy`: the failure is
classified (``transient`` — a lost worker or timeout, safe to retry, with
exponential backoff and checkpoint resume; ``poison`` — a deterministic
in-chain error that recurs on every replay, retried without backoff only to
confirm) and the job parks in state ``RETRYING`` until its backoff expires,
quarantining to ``FAILED`` with every attempt's traceback once
``max_attempts`` is exhausted. A poison job therefore never blocks the
queue: other work drains while it waits, and its retries fail fast at the
initial-position density check.
"""

from __future__ import annotations

import heapq
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.amortize.guides import GuideStore
from repro.amortize.policy import (
    EscalationPolicy,
    Provenance,
    exact_provenance,
    surrogate_result,
    surrogate_rng,
)
from repro.amortize.psis import psis, surrogate_log_ratios
from repro.arch.machine import MachineModel
from repro.arch.platforms import SKYLAKE
from repro.arch.profile import WorkloadProfile, profile_workload
from repro.core.predictor import LLC_BOUND_MPKI, LlcMissPredictor, PredictionPoint
from repro.core.scheduler import PlatformScheduler
from repro.inference.results import SamplingResult
from repro.serve.checkpoint import CheckpointStore
from repro.serve.job import ElisionSummary, Job, JobSpec, JobState, Placement
from repro.serve.monitor import ConvergenceMonitor
from repro.serve.queue import AdmissionError, JobQueue
from repro.serve.store import ResultStore, StoredResult, stored_provenance
from repro.resilience.admission import AdmissionController, LoadSheddedError
from repro.resilience.breakers import BreakerBoard, CircuitOpenError
from repro.serve.workers import (
    ChainExecutionError,
    ChainWorkerPool,
    JobDeadlineExceeded,
    JobHalted,
    chain_tasks,
    truncate_chain,
)
from repro.telemetry.exposition import write_metrics_file
from repro.telemetry.instrument import (
    AMORTIZE_ESCALATIONS,
    AMORTIZE_GUIDE_TRAIN_SECONDS,
    AMORTIZE_GUIDE_TRAINS,
    AMORTIZE_KHAT,
    AMORTIZE_SERVED,
    RESILIENCE_BROWNOUT_DOWNGRADES,
    RESILIENCE_DEADLINE_EXPIRED,
    RESILIENCE_DEGRADED,
    RESILIENCE_DURABILITY_ERRORS,
    SERVE_ADMISSION_REJECTIONS,
    SERVE_JOB_RETRIES,
    SERVE_JOBS,
    SERVE_QUEUE_DEPTH,
    help_for,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How the server reacts to failed job attempts."""

    #: Total attempts per job (first run included).
    max_attempts: int = 3
    #: Backoff before transient retry ``n`` is ``base_backoff * 2**(n-1)``.
    base_backoff: float = 0.5
    max_backoff: float = 60.0
    #: Poison failures recur deterministically — retry immediately (the
    #: replay is cheap: it fails at the initial density check) rather than
    #: holding queue capacity hostage to a backoff that cannot help.
    poison_backoff: float = 0.0

    def backoff(self, kind: str, attempt: int) -> float:
        """Delay before the next attempt, given ``attempt`` failures so far.

        Never negative (a negative delay would reorder the retry heap), and
        safe at any attempt count: the exponent is clamped so a pathological
        ``max_attempts`` cannot overflow ``2 ** (attempt - 1)`` into an
        int-to-float conversion error — past ~2**60 the cap wins anyway.
        """
        if kind == "poison":
            return max(0.0, self.poison_backoff)
        exponent = min(max(attempt, 1) - 1, 60)
        delay = self.base_backoff * (2.0 ** exponent)
        return max(0.0, min(self.max_backoff, delay))


def classify_failure(exc: BaseException) -> str:
    """``"poison"`` (deterministic, recurs on replay) or ``"transient"``.

    Chain determinism does the classifying: an exception raised *inside* a
    chain replays identically, while losing the worker process (or the whole
    job timing out) says nothing about the computation.
    """
    if isinstance(exc, ChainExecutionError):
        return "poison" if exc.poison else "transient"
    if isinstance(exc, JobHalted):
        # A graceful-drain stop says nothing about the job; a restarted
        # server resumes it from its checkpoints.
        return "transient"
    if isinstance(exc, (TimeoutError, ConnectionError, BrokenPipeError)):
        return "transient"
    return "poison"


class InferenceServer:
    """Synchronous job service over the chain worker pool."""

    def __init__(
        self,
        n_workers: Optional[int] = None,
        scheduler: Optional[PlatformScheduler] = None,
        store: Optional[ResultStore] = None,
        queue: Optional[JobQueue] = None,
        pool: Optional[ChainWorkerPool] = None,
        checkpoint_dir: Optional[str] = None,
        max_pending: Optional[int] = 64,
        start_method: Optional[str] = None,
        #: Disable to skip profiling/placement (pure execution backend).
        placement: bool = True,
        #: Calibration budget for profiling; small values keep admission
        #: cheap, the profile only needs the mean trajectory length.
        calibration_iterations: int = 30,
        retry_policy: Optional[RetryPolicy] = None,
        #: Trained-guide cache for the amortized tiers. Defaults to an
        #: in-memory store so ``fast``/``checked`` submissions always work;
        #: pass a directory-backed store to reuse guides across restarts.
        guide_store: Optional[GuideStore] = None,
        #: When the checked tier trusts the surrogate (PSIS k̂ ≤ 0.7).
        escalation_policy: Optional[EscalationPolicy] = None,
        #: Cost-aware load shedding + brownout (None: admit everything —
        #: exactly the pre-resilience behavior; deadlines still work).
        admission: Optional[AdmissionController] = None,
        #: Circuit breakers for GuideStore/ResultStore I/O. Defaults to a
        #: fresh board on the server's registry.
        breakers: Optional[BreakerBoard] = None,
        #: Called with the job as each execution attempt starts / ends (the
        #: end callback also fires on RETRYING attempts).
        on_job_start: Optional[Callable[[Job], None]] = None,
        on_job_finish: Optional[Callable[[Job], None]] = None,
        #: Mid-run progress pub/sub seam: called as ``on_progress(job,
        #: event, data)`` from the drain thread. Today's only event is
        #: ``"rhat"`` (``{"kept": int, "rhat": float}``), fired once per
        #: online convergence checkpoint — the stream the gateway turns
        #: into Server-Sent Events.
        on_progress: Optional[Callable[[Job, str, Dict], None]] = None,
        #: Telemetry sinks. The serving layer is always instrumented: both
        #: default to the process-global registry/tracer so worker metrics,
        #: monitor gauges and server counters land in one namespace.
        registry=None,
        tracer=None,
        #: Prometheus text file rewritten atomically after every attempt.
        metrics_file: Optional[str] = None,
    ) -> None:
        from repro import telemetry

        self.registry = registry if registry is not None else telemetry.get_registry()
        self.tracer = tracer if tracer is not None else telemetry.get_tracer()
        self.metrics_file = metrics_file
        # `is None` checks: JobQueue and ResultStore are sized containers,
        # so a freshly injected (empty) one is falsy.
        self.queue = queue if queue is not None else JobQueue(max_pending=max_pending)
        self.store = store if store is not None else ResultStore()
        self.pool = pool if pool is not None else ChainWorkerPool(
            n_workers=n_workers, start_method=start_method,
            registry=self.registry,
        )
        self.checkpoint_dir = checkpoint_dir
        self.placement = placement
        self.calibration_iterations = calibration_iterations
        #: All jobs ever seen by this server, by id (submission order).
        self.jobs: Dict[str, Job] = {}
        self._models: Dict[Tuple, object] = {}
        self._profiles: Dict[Tuple, WorkloadProfile] = {}
        self._points: Dict[str, PredictionPoint] = {}
        self._scheduler = scheduler
        self._scheduler_injected = scheduler is not None
        self._characterizer = MachineModel(SKYLAKE)
        self.retry_policy = retry_policy or RetryPolicy()
        self.guide_store = guide_store if guide_store is not None else GuideStore()
        self.escalation_policy = escalation_policy or EscalationPolicy()
        self.admission = admission
        if self.admission is not None and self.admission.registry is None:
            self.admission.registry = self.registry
        self.breakers = (
            breakers if breakers is not None
            else BreakerBoard(registry=self.registry)
        )
        self.on_job_start = on_job_start
        self.on_job_finish = on_job_finish
        self.on_progress = on_progress
        #: (due_monotonic, seq, job) min-heap of jobs waiting out a backoff.
        self._retries: List[Tuple[float, int, Job]] = []
        self._retry_seq = 0
        self._queue_depth = self.registry.gauge(
            SERVE_QUEUE_DEPTH, help=help_for(SERVE_QUEUE_DEPTH)
        )
        self._admission_rejections = self.registry.counter(
            SERVE_ADMISSION_REJECTIONS, help=help_for(SERVE_ADMISSION_REJECTIONS)
        )

    # -- submission ------------------------------------------------------------

    def submit(self, spec: Union[JobSpec, str], **overrides) -> Job:
        """Admit a request; dedupe against the store and the queue.

        Accepts a full :class:`JobSpec` or a workload name plus spec fields.
        Returns the job tracking this work — possibly an already-queued
        duplicate, or an immediately-DONE job answered from the store.
        """
        if isinstance(spec, str):
            spec = JobSpec(workload=spec, **overrides)
        elif overrides:
            raise TypeError("pass either a JobSpec or a workload name + fields")
        from repro.suite import workload_names

        if spec.workload not in workload_names():
            raise KeyError(
                f"unknown workload {spec.workload!r}; "
                f"available: {', '.join(workload_names())}"
            )

        stored = self._store_get(spec.key())
        provenance = stored_provenance(stored) if stored is not None else None
        if stored is None and spec.mode != "exact":
            # Dedup inheritance: an exact answer satisfies any mode of the
            # same sampling spec (the upgrade documented in JobSpec.key).
            stored = self._store_get(spec.with_mode("exact").key())
            if stored is not None:
                provenance = Provenance(mode=spec.mode, tier="exact")
        if stored is not None:
            job = Job(spec)
            job.deduped = True
            job.result = stored.result
            job.placement = stored.placement
            job.elision = stored.elision
            job.provenance = provenance
            job.transition(JobState.DONE)
            self.jobs[job.job_id] = job
            self._count_terminal(job)
            return job

        if self.admission is not None:
            queued = self.queue.snapshot()
            if spec.key() not in {queued_job.key for queued_job in queued}:
                # Cost-aware shedding — but never shed a duplicate of work
                # already queued: folding onto it is free.
                try:
                    self.admission.check(
                        spec,
                        self.admission.expected_wait(
                            [queued_job.spec for queued_job in queued]
                        ),
                    )
                except LoadSheddedError:
                    self._admission_rejections.inc()
                    raise

        try:
            job = self.queue.push(Job(spec))
        except AdmissionError:
            self._admission_rejections.inc()
            raise
        self.jobs.setdefault(job.job_id, job)
        self._queue_depth.set(len(self.queue))
        return job

    # -- result-store access (circuit-broken) ----------------------------------

    def _store_get(self, key: str) -> Optional[StoredResult]:
        """Dedup lookup through the result-store breaker.

        An open circuit (or an I/O failure) degrades to a cache miss — the
        job recomputes, which deterministic execution makes merely slower,
        never wrong.
        """
        breaker = self.breakers.get("result_store")
        if not breaker.allow():
            return None
        try:
            record = self.store.get(key)
        except OSError as exc:
            breaker.record_failure()
            self._count_durability_error("store")
            warnings.warn(
                f"result store read failed ({exc}); treating as a miss",
                RuntimeWarning,
            )
            return None
        breaker.record_success()
        return record

    def _store_put(self, key: str, record: StoredResult) -> None:
        """Persist through the breaker; failures degrade durability only.

        The job already holds its result in memory — losing the disk write
        costs future dedup, not this answer. ``ResultStore.put`` records
        in-memory before touching disk, so even a failed call still serves
        in-process repeats.
        """
        breaker = self.breakers.get("result_store")
        if not breaker.allow():
            self._count_durability_error("store")
            return
        try:
            self.store.put(key, record)
        except OSError as exc:
            breaker.record_failure()
            self._count_durability_error("store")
            warnings.warn(
                f"result store write failed ({exc}); result served from "
                f"memory only",
                RuntimeWarning,
            )
            return
        breaker.record_success()

    def _count_durability_error(self, target: str) -> None:
        self.registry.counter(
            RESILIENCE_DURABILITY_ERRORS, {"target": target},
            help=help_for(RESILIENCE_DURABILITY_ERRORS),
        ).inc()

    # -- telemetry -------------------------------------------------------------

    def _count_terminal(self, job: Job) -> None:
        self.registry.counter(
            SERVE_JOBS, {"state": job.state.value}, help=help_for(SERVE_JOBS)
        ).inc()

    def _publish_metrics(self) -> None:
        if self.metrics_file is not None:
            write_metrics_file(self.metrics_file, self.registry)

    # -- placement -------------------------------------------------------------

    def _cache_key(self, spec: JobSpec) -> Tuple:
        return (spec.workload, spec.scale, spec.dataset_seed)

    def _model(self, spec: JobSpec):
        from repro.suite import load_workload

        key = self._cache_key(spec)
        if key not in self._models:
            self._models[key] = load_workload(
                spec.workload, scale=spec.scale, seed=spec.dataset_seed
            )
        return self._models[key]

    def _profile(self, spec: JobSpec) -> WorkloadProfile:
        key = self._cache_key(spec)
        if key not in self._profiles:
            self._profiles[key] = profile_workload(
                self._model(spec),
                calibration_iterations=self.calibration_iterations,
                n_chains=2,
                seed=spec.seed,
            )
        return self._profiles[key]

    def _place(self, profile: WorkloadProfile) -> Placement:
        """Predictor-driven placement, falling back to the direct MPKI rule
        until two distinct workloads give the predictor something to fit."""
        if profile.name not in self._points:
            counters = self._characterizer.counters(
                profile, n_cores=4, n_chains=4
            )
            self._points[profile.name] = PredictionPoint(
                name=profile.name,
                modeled_data_bytes=profile.modeled_data_bytes,
                llc_mpki=counters.llc_mpki,
            )
            if not self._scheduler_injected and len(self._points) >= 2:
                predictor = LlcMissPredictor().fit(list(self._points.values()))
                self._scheduler = PlatformScheduler(predictor)

        if self._scheduler is not None:
            platform = self._scheduler.choose_platform(profile)
            predictor = self._scheduler.predictor
            return Placement(
                platform=platform.codename,
                predicted_llc_bound=predictor.predict_llc_bound(
                    profile.modeled_data_bytes
                ),
                predicted_mpki=predictor.predict_mpki(
                    profile.modeled_data_bytes
                ),
                predictor_fitted=True,
            )

        # Cold start: a single point cannot fit a threshold, but its own
        # simulated MPKI already answers the LLC-bound question.
        point = self._points[profile.name]
        bound = point.llc_mpki >= LLC_BOUND_MPKI
        fallback = PlatformScheduler(LlcMissPredictor())
        platform = fallback.big_cache if bound else fallback.fast
        return Placement(
            platform=platform.codename,
            predicted_llc_bound=bound,
            predicted_mpki=point.llc_mpki,
            predictor_fitted=False,
        )

    # -- execution -------------------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        """The next job to attempt: a due retry, else the queue's head.

        When only not-yet-due retries remain, sleeps until the earliest one
        is due rather than reporting the server drained.
        """
        while True:
            if self._retries:
                due, _, retry = self._retries[0]
                now = time.monotonic()
                if due <= now:
                    heapq.heappop(self._retries)
                    return retry
                queued = self.queue.pop()
                if queued is not None:
                    return queued
                time.sleep(min(due - now, 1.0))
                continue
            return self.queue.pop()

    def run_next(self) -> Optional[Job]:
        """Run the next due job attempt; None when fully drained.

        The returned job may be terminal *or* parked in ``RETRYING`` (its
        next attempt will surface from a later ``run_next`` call once the
        backoff expires).
        """
        job = self._next_job()
        if job is None:
            return None
        self._queue_depth.set(len(self.queue))
        if job.expired:
            # Dropped before it starts: the fast 504-style terminal state.
            # Expiring costs nothing, so it beats burning pool time on an
            # answer nobody is waiting for.
            self._expire(job, phase="pre_start")
            self._count_terminal(job)
            self._note_queue_wait()
            self._publish_metrics()
            if self.on_job_finish is not None:
                self.on_job_finish(job)
            return job
        job.attempts += 1
        job.transition(JobState.RUNNING)
        if self.on_job_start is not None:
            self.on_job_start(job)
        started_at = time.monotonic()
        if self.admission is not None:
            self.admission.job_started(job.spec)
        try:
            self._execute(job)
        except Exception as exc:
            self._handle_failure(job, exc)
        if self.admission is not None:
            # Only clean completions teach the service-time model: a failed,
            # halted, or deadline-truncated attempt measures the fault, not
            # the family's cost.
            clean = job.state in (JobState.DONE, JobState.CONVERGED) and (
                job.provenance is None or job.provenance.degraded is None
            )
            self.admission.job_finished(
                job.spec, time.monotonic() - started_at, success=clean
            )
            self._note_queue_wait()
        if job.state.terminal:
            self._count_terminal(job)
            self.pool.discard_job_metrics(job.job_id)
        self._publish_metrics()
        if self.on_job_finish is not None:
            self.on_job_finish(job)
        return job

    def _note_queue_wait(self) -> None:
        """Feed the brownout machine the queue's current expected wait, so
        sustained-overload state also decays as the backlog drains."""
        if self.admission is None:
            return
        queued = [queued_job.spec for queued_job in self.queue.snapshot()]
        self.admission.note_wait(self.admission.expected_wait(queued))

    def _expire(self, job: Job, phase: str) -> None:
        job.error = (
            f"deadline_s={job.spec.deadline_s:g} lapsed "
            f"{'before the job started' if phase == 'pre_start' else 'mid-run'}"
        )
        job.transition(JobState.EXPIRED)
        self.registry.counter(
            RESILIENCE_DEADLINE_EXPIRED, {"phase": phase},
            help=help_for(RESILIENCE_DEADLINE_EXPIRED),
        ).inc()

    def _handle_failure(self, job: Job, exc: BaseException) -> None:
        """Apply the retry policy to a failed attempt."""
        if isinstance(exc, JobHalted):
            # A graceful-drain stop is the service's choice, not the job's
            # failure: park it without consuming an attempt. Its chains
            # checkpointed on the way out, so a restarted server (or this
            # one, if the drain is abandoned) resumes instead of re-running.
            job.attempts -= 1
            job.was_halted = True
            job.failure_kind = "transient"
            job.attempt_errors.append(
                "attempt halted for graceful drain (not counted)"
            )
            job.transition(JobState.RETRYING)
            self._retry_seq += 1
            heapq.heappush(
                self._retries,
                (time.monotonic() + 0.1, self._retry_seq, job),
            )
            return
        kind = classify_failure(exc)
        job.failure_kind = kind
        job.attempt_errors.append(traceback.format_exc())
        if job.attempts < self.retry_policy.max_attempts:
            self.registry.counter(
                SERVE_JOB_RETRIES, {"kind": kind},
                help=help_for(SERVE_JOB_RETRIES),
            ).inc()
        if job.attempts >= self.retry_policy.max_attempts:
            job.fail(
                f"failed after {job.attempts} attempt(s) "
                f"(last failure: {kind}):\n" + job.attempt_errors[-1]
            )
            return
        job.transition(JobState.RETRYING)
        delay = self.retry_policy.backoff(kind, job.attempts)
        self._retry_seq += 1
        heapq.heappush(
            self._retries,
            (time.monotonic() + delay, self._retry_seq, job),
        )

    def _execute(self, job: Job) -> None:
        """Dispatch one attempt: amortized tiers first, exact as fallback.

        ``fast``/``checked`` jobs try the surrogate path; a served answer
        ends the attempt. An escalation (or any amortized-path error) falls
        through to the exact path in the *same* attempt — chain execution
        never reads ``mode``, so the escalated draws are bit-identical to a
        direct ``exact`` submission of the same sampling spec.
        """
        if job.spec.mode != "exact" and self._execute_amortized(job):
            return
        self._execute_exact(job)

    def _execute_amortized(self, job: Job) -> bool:
        """Try to answer ``job`` from its family's guide.

        Returns True when the job reached a terminal state here (surrogate
        served, or an escalation answered by a stored exact result). False
        means run the exact path: the checked tier rejected the surrogate,
        or the amortized path itself failed (a broken guide must degrade to
        exact service, never to a failed job).
        """
        spec = job.spec
        policy = self.escalation_policy
        try:
            model = self._model(spec)
            with self.tracer.span(
                "serve.amortize", job=job.job_id, workload=spec.workload,
                mode=spec.mode,
            ) as attrs:
                guide_breaker = self.breakers.get("guide_store")
                if not guide_breaker.allow():
                    # Open circuit: recent guide training/loads kept
                    # failing. Skip straight to the exact path instead of
                    # paying the failure again (the except below records
                    # the breadcrumb).
                    raise CircuitOpenError("guide_store")
                try:
                    record, trained = self.guide_store.get_or_train(model)
                except Exception:
                    guide_breaker.record_failure()
                    raise
                guide_breaker.record_success()
                attrs["guide"] = record.guide_id
                attrs["trained"] = trained
                if trained:
                    self.registry.counter(
                        AMORTIZE_GUIDE_TRAINS,
                        help=help_for(AMORTIZE_GUIDE_TRAINS),
                    ).inc()
                    self.registry.counter(
                        AMORTIZE_GUIDE_TRAIN_SECONDS,
                        help=help_for(AMORTIZE_GUIDE_TRAIN_SECONDS),
                    ).inc(record.train_seconds)

                rng = surrogate_rng(spec.seed)
                result = surrogate_result(
                    model, record.advi, spec.n_chains, spec.budget_kept, rng
                )

                k_hat: Optional[float] = None
                if spec.mode == "checked":
                    draws = np.vstack([c.samples for c in result.chains])
                    diagnostic = psis(
                        surrogate_log_ratios(
                            model, record.advi, draws,
                            max_draws=policy.psis_max_draws,
                        )
                    )
                    k_hat = float(diagnostic.k_hat)
                    attrs["k_hat"] = k_hat
                    self.registry.gauge(
                        AMORTIZE_KHAT, {"workload": spec.workload},
                        help=help_for(AMORTIZE_KHAT),
                    ).set(k_hat)
                    if policy.should_escalate(k_hat):
                        if (
                            self.admission is not None
                            and self.admission.brownout_active()
                        ):
                            # Brownout: sustained overload downgrades the
                            # escalation to the surrogate answer. The PSIS
                            # gate still ran — k̂ is recorded and the
                            # downgrade is explicit in provenance — but the
                            # expensive exact run is suppressed until the
                            # backlog drains. Degraded answers are never
                            # stored, so no future request inherits this.
                            attrs["brownout"] = True
                            job.provenance = Provenance(
                                mode=spec.mode,
                                tier="fast",
                                k_hat=k_hat,
                                k_hat_threshold=policy.k_hat_threshold,
                                guide_id=record.guide_id,
                                guide_trained=trained,
                                escalated=False,
                                degraded="brownout",
                            )
                            job.result = result
                            self.registry.counter(
                                RESILIENCE_BROWNOUT_DOWNGRADES,
                                help=help_for(RESILIENCE_BROWNOUT_DOWNGRADES),
                            ).inc()
                            self.registry.counter(
                                RESILIENCE_DEGRADED, {"reason": "brownout"},
                                help=help_for(RESILIENCE_DEGRADED),
                            ).inc()
                            self.registry.counter(
                                AMORTIZE_SERVED, {"tier": "fast"},
                                help=help_for(AMORTIZE_SERVED),
                            ).inc()
                            self._emit_tier_event(job)
                            job.transition(JobState.DONE)
                            return True
                        attrs["escalated"] = True
                        self.registry.counter(
                            AMORTIZE_ESCALATIONS,
                            {"workload": spec.workload},
                            help=help_for(AMORTIZE_ESCALATIONS),
                        ).inc()
                        job.provenance = Provenance(
                            mode=spec.mode,
                            tier="exact",
                            k_hat=k_hat,
                            k_hat_threshold=policy.k_hat_threshold,
                            guide_id=record.guide_id,
                            guide_trained=trained,
                            escalated=True,
                        )
                        self._emit_tier_event(job)
                        return self._serve_escalation_from_store(job)

            # Serve the surrogate.
            job.provenance = Provenance(
                mode=spec.mode,
                tier=spec.mode,
                k_hat=k_hat,
                k_hat_threshold=(
                    policy.k_hat_threshold if spec.mode == "checked" else None
                ),
                guide_id=record.guide_id,
                guide_trained=trained,
                escalated=False,
            )
            job.result = result
            self.registry.counter(
                AMORTIZE_SERVED, {"tier": spec.mode},
                help=help_for(AMORTIZE_SERVED),
            ).inc()
            self._emit_tier_event(job)
            self._store_put(
                spec.key(),
                StoredResult(
                    spec=spec, result=result, provenance=job.provenance
                ),
            )
            job.transition(JobState.DONE)
            return True
        except Exception:
            # Degrade, don't fail: whatever broke (guide training, the
            # PSIS check, a stale pickle) the exact path still answers.
            job.provenance = None
            job.attempt_errors.append(
                "amortized path failed, fell back to exact:\n"
                + traceback.format_exc()
            )
            return False

    def _emit_tier_event(self, job: Job) -> None:
        """Publish the tier decision on the progress stream (SSE seam)."""
        if self.on_progress is None or job.provenance is None:
            return
        self.on_progress(job, "tier", job.provenance.to_dict())

    def _serve_escalation_from_store(self, job: Job) -> bool:
        """Answer an escalated job from its exact twin's stored result.

        Escalated work inherits the exact tier's dedup: if the identical
        exact run is already stored, serve it (recording the escalated
        provenance under the checked key so repeats dedup directly) instead
        of sampling again. Returns False when no stored twin exists — the
        caller then runs the exact path inline.
        """
        spec = job.spec
        stored = self._store_get(spec.with_mode("exact").key())
        if stored is None:
            return False
        job.deduped = True
        job.result = stored.result
        job.placement = stored.placement
        job.elision = stored.elision
        self._store_put(
            spec.key(),
            StoredResult(
                spec=spec,
                result=stored.result,
                placement=stored.placement,
                elision=stored.elision,
                provenance=job.provenance,
            ),
        )
        job.transition(JobState.DONE)
        return True

    def _execute_exact(self, job: Job) -> None:
        spec = job.spec
        model = self._model(spec)

        profile: Optional[WorkloadProfile] = None
        if self.placement:
            with self.tracer.span(
                "serve.place", job=job.job_id, workload=spec.workload
            ) as attrs:
                profile = self._profile(spec)
                job.placement = self._place(profile)
                attrs["platform"] = job.placement.platform

        monitor: Optional[ConvergenceMonitor] = None
        if spec.elide and spec.n_chains >= 2:
            monitor = ConvergenceMonitor(
                n_chains=spec.n_chains,
                dim=model.dim,
                rhat_threshold=spec.rhat_threshold,
                check_interval=spec.check_interval,
                min_kept=spec.min_kept,
                registry=self.registry,
                job_id=job.job_id,
            )

        def on_draws(chain_index, kept_block):
            if monitor is None:
                return None
            seen = len(monitor.rhat_trace)
            stop_kept = monitor.observe(chain_index, kept_block)
            if self.on_progress is not None:
                # Every checkpoint the observe call just evaluated becomes
                # one progress event (a single block can cross several).
                for kept, rhat in zip(
                    monitor.checkpoints[seen:], monitor.rhat_trace[seen:]
                ):
                    self.on_progress(
                        job, "rhat", {"kept": int(kept), "rhat": float(rhat)}
                    )
            if stop_kept is None:
                return None
            return spec.resolved_warmup + stop_kept

        # A retry after a transient failure resumes each chain from its
        # checkpointed sampler state (bit-identical to starting over, by
        # construction, but skipping the already-computed prefix). Poison
        # failures replay from scratch — resuming cannot change a
        # deterministic outcome, and the failure may predate the checkpoint.
        resume = (
            (job.attempts > 1 or job.was_halted)
            and job.failure_kind == "transient"
            and self.checkpoint_dir is not None
        )
        with self.tracer.span(
            "serve.execute", job=job.job_id, workload=spec.workload,
            engine=spec.engine, n_chains=spec.n_chains,
            attempt=job.attempts, resume=resume,
        ) as attrs:
            try:
                chains = self.pool.run_job(
                    chain_tasks(
                        spec, job.job_id, self.checkpoint_dir, resume=resume
                    ),
                    on_draws=on_draws,
                    on_chain_restart=(
                        monitor.reset_chain if monitor is not None else None
                    ),
                    deadline_at=job.deadline_at,
                )
            except JobDeadlineExceeded as exc:
                attrs["deadline_expired"] = True
                self._finish_deadline_partial(job, model, exc.chains)
                return
            attrs["elided"] = monitor is not None and monitor.converged

        elided = monitor is not None and monitor.converged
        if elided:
            total = spec.resolved_warmup + monitor.converged_kept
            chains = [truncate_chain(chain, total) for chain in chains]

        job.result = SamplingResult(
            model_name=model.name,
            chains=chains,
            param_names=model.flat_param_names(),
        )
        if monitor is not None:
            job.elision = ElisionSummary(
                budget_kept=spec.budget_kept,
                converged_kept=monitor.converged_kept,
                rhat_threshold=spec.rhat_threshold,
                checkpoints=list(monitor.checkpoints),
                rhat_trace=list(monitor.rhat_trace),
            )
        if self._scheduler is not None and profile is not None:
            scheduled = self._scheduler.schedule(
                profile, list(job.result.chain_work)
            )
            job.simulated_seconds = scheduled.seconds
            job.baseline_seconds = scheduled.baseline_seconds

        if job.provenance is None:
            job.provenance = exact_provenance(spec.mode)
        with self.tracer.span("serve.store", job=job.job_id):
            self._store_put(
                spec.key(),
                StoredResult(
                    spec=spec,
                    result=job.result,
                    placement=job.placement,
                    elision=job.elision,
                    provenance=job.provenance,
                ),
            )
            if spec.mode != "exact":
                # The draws ARE the exact answer (mode never reaches chain
                # execution), so an escalated/fallen-back run also settles
                # the exact twin's key — a later exact submission dedups.
                exact_spec = spec.with_mode("exact")
                self._store_put(
                    exact_spec.key(),
                    StoredResult(
                        spec=exact_spec,
                        result=job.result,
                        placement=job.placement,
                        elision=job.elision,
                        provenance=exact_provenance(),
                    ),
                )
        job.transition(JobState.CONVERGED if elided else JobState.DONE)
        if self.checkpoint_dir is not None:
            # The result is stored; the partial-progress safety net served
            # its purpose. (Failed jobs keep theirs: a usable partial
            # posterior and the raw material for post-mortems.)
            CheckpointStore(self.checkpoint_dir).discard_job(job.job_id)

    def _finish_deadline_partial(self, job: Job, model, chains) -> None:
        """Settle a job whose deadline lapsed mid-run.

        Past warmup, the draws already produced are a valid (smaller)
        posterior sample — serve them, flagged ``degraded: deadline`` in
        provenance. The result is **never stored**: the store's contract is
        that a key's draws are the spec's full deterministic answer, and a
        partial sample depends on wall-clock timing. Before any chain
        clears warmup there is nothing defensible to serve, so the job ends
        EXPIRED (the gateway answers 504).

        Chains stop cooperatively at their next iteration, so their lengths
        differ by a few iterations; truncating all to the shortest keeps
        the result rectangular (the same invariant elision relies on).
        """
        spec = job.spec
        min_total = min(chain.n_iterations for chain in chains)
        kept = min_total - spec.resolved_warmup
        if kept < 1:
            self._expire(job, phase="mid_run")
            return
        chains = [truncate_chain(chain, min_total) for chain in chains]
        job.result = SamplingResult(
            model_name=model.name,
            chains=chains,
            param_names=model.flat_param_names(),
        )
        if job.provenance is None:
            job.provenance = exact_provenance(spec.mode)
        job.provenance.degraded = "deadline"
        self.registry.counter(
            RESILIENCE_DEGRADED, {"reason": "deadline"},
            help=help_for(RESILIENCE_DEGRADED),
        ).inc()
        self.registry.counter(
            RESILIENCE_DEADLINE_EXPIRED, {"phase": "mid_run"},
            help=help_for(RESILIENCE_DEADLINE_EXPIRED),
        ).inc()
        self._emit_tier_event(job)
        job.transition(JobState.DONE)

    def run_until_drained(self) -> List[Job]:
        """Execute every job to a terminal state (priority order).

        Returns the jobs in completion order. Attempts that park in
        ``RETRYING`` are not returned; the job appears once, after its
        final attempt lands it in CONVERGED, DONE, or FAILED.
        """
        finished: List[Job] = []
        while True:
            job = self.run_next()
            if job is None:
                return finished
            if job.state.terminal:
                finished.append(job)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
