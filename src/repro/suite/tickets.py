"""``tickets`` — do NYPD officers match departmental productivity targets?

Generative mixture model of monthly traffic-ticket counts per officer, after
Auerbach (2017): each officer has a latent base rate drawn from a population
distribution; in end-of-quota months an officer either writes at the usual
base rate or switches to writing *exactly toward the departmental target*
(mixture weight ``w``). The target component is marginalized per observation
with a log-sum-exp, which is why this is the suite's biggest model code as
well as its largest modeled dataset — the workload the paper singles out for
heavy LLC and i-cache pressure.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import special as sps

from repro.autodiff import ops
from repro.autodiff.tape import Var
from repro.models import BayesianModel, ParameterSpec
from repro.models import distributions as dist
from repro.models.transforms import Positive
from repro.suite.data import make_tickets


def _poisson_log_elementwise(counts: np.ndarray, log_rate: Var) -> Var:
    """Per-observation Poisson log pmf (not summed), log-rate parameterized."""
    counts = np.asarray(counts, dtype=float)
    const = ops.constant(-sps.gammaln(counts + 1.0))
    return ops.constant(counts) * log_rate - ops.exp(log_rate) + const


class Tickets(BayesianModel):
    name = "tickets"
    model_family = "Hierarchical Generative Mixture"
    application = "Do police officers alter ticket writing to match targets?"
    reference = "Auerbach 2017, Significance 14(4); NYC ticket data"
    default_iterations = 8000
    default_warmup = 500
    default_chains = 4

    def __init__(self, scale: float = 1.0, seed: int = 106) -> None:
        super().__init__()
        data = make_tickets(scale=scale, seed=seed)
        self.truth = data.pop("truth")
        self.n_officers = data.pop("n_officers")
        self.add_data(**data)
        quota = self.data("quota_phase")
        self._quota_idx = np.flatnonzero(quota > 0)
        self._free_idx = np.flatnonzero(quota == 0)

    @property
    def params(self):
        return [
            ParameterSpec("mu_officer", 1, init=2.0),
            ParameterSpec("sigma_officer", 1, transform=Positive(), init=0.5),
            ParameterSpec("officer_raw", self.n_officers, init=0.0),
            ParameterSpec("log_target", 1, init=2.5),
            ParameterSpec("w_logit", 1, init=-1.0),
        ]

    def log_joint(self, p: Dict[str, Var]) -> Var:
        counts = self.data("tickets")
        # Non-centered officer rates: effect = mu + sigma * raw.
        officer_effect = p["mu_officer"] + p["sigma_officer"] * p["officer_raw"]
        log_base = (
            ops.take(officer_effect, self.data("officer"))
            + ops.constant(self.data("log_exposure"))
        )

        # Months outside quota pressure: plain hierarchical Poisson.
        free = self._free_idx
        lp_free = ops.sum(
            _poisson_log_elementwise(counts[free], ops.take(log_base, free))
        )

        # End-of-quota months: marginalized two-component mixture between the
        # officer's own rate and the departmental target rate.
        quota = self._quota_idx
        log_w = ops.log_sigmoid(p["w_logit"])
        log_1m_w = ops.log_sigmoid(-p["w_logit"])
        lp_target = _poisson_log_elementwise(counts[quota], p["log_target"])
        lp_base = _poisson_log_elementwise(counts[quota], ops.take(log_base, quota))
        mixture = ops.logsumexp(
            ops.stack([log_w + lp_target, log_1m_w + lp_base]), axis=0
        )
        lp_quota = ops.sum(mixture)

        return (
            lp_free
            + lp_quota
            + dist.normal_lpdf(p["officer_raw"], 0.0, 1.0)
            + dist.normal_lpdf(p["mu_officer"], 2.0, 2.0)
            + dist.half_cauchy_lpdf(p["sigma_officer"], 1.0)
            + dist.normal_lpdf(p["log_target"], 2.5, 1.0)
            + dist.normal_lpdf(p["w_logit"], 0.0, 1.5)
        )

    def posterior_match_probability(self, w_logit_draws: np.ndarray) -> np.ndarray:
        """Posterior fraction of quota months written toward the target."""
        return sps.expit(w_logit_draws)
