"""Resilience for the serving stack: deadlines, shedding, breakers, chaos.

This package holds the overload-protection and graceful-degradation
policies that connect the fault-tolerant workers (PR 2), the telemetry
subsystem (PR 3), the gateway (PR 4), and the amortized tiers (PR 6) into
one story:

* :mod:`repro.resilience.admission` — cost-aware load shedding from
  measured per-family service times, plus the brownout tier-downgrade
  machine.
* :mod:`repro.resilience.breakers` — circuit breakers with half-open
  probing around failure-prone dependencies.
* :mod:`repro.resilience.chaos` — the network/disk fault injector used by
  the e2e chaos suite (and available against live services).

Per-job deadlines live on :class:`repro.serve.job.JobSpec` (``deadline_s``)
and are enforced by :class:`repro.serve.server.InferenceServer` with
cooperative mid-run cancellation through the worker pool's stop broadcast.
See ``docs/resilience.md``.
"""

from repro.resilience.admission import (
    AdmissionController,
    LoadSheddedError,
    family_key,
)
from repro.resilience.breakers import (
    BreakerBoard,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.chaos import ChaosFault, ChaosInjector
from repro.resilience.errors import AdmissionError

__all__ = [
    "AdmissionError",
    "AdmissionController",
    "LoadSheddedError",
    "family_key",
    "BreakerBoard",
    "CircuitBreaker",
    "CircuitOpenError",
    "ChaosFault",
    "ChaosInjector",
]
