"""Package power and energy model.

Linear utilization model anchored at the Table II TDPs: idle (uncore +
leakage) plus a per-active-core share of the remaining budget. This is the
cost function the paper's design-space exploration minimizes (Section VI-B),
so only relative accuracy across configurations matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.platforms import Platform

#: Idle package power as a fraction of TDP.
IDLE_FRACTION = 0.30


@dataclass(frozen=True)
class EnergyModel:
    platform: Platform

    def power_watts(self, n_cores_active: int) -> float:
        """Package power with ``n_cores_active`` cores busy."""
        if n_cores_active < 0 or n_cores_active > self.platform.cores:
            raise ValueError(
                f"{self.platform.codename}: active cores must be in "
                f"[0, {self.platform.cores}], got {n_cores_active}"
            )
        tdp = self.platform.tdp_w
        idle = IDLE_FRACTION * tdp
        per_core = (tdp - idle) / self.platform.cores
        return idle + per_core * n_cores_active

    def energy_joules(self, n_cores_active: int, seconds: float) -> float:
        """Energy of a job occupying ``n_cores_active`` cores for ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.power_watts(n_cores_active) * seconds
