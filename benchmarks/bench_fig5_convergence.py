"""Figure 5 — the convergence process of 12cities.

R-hat (blue line) fluctuates and crosses below 1.1 long before the budget is
exhausted; the KL divergence to ground truth (green line) decreases with
iterations and is already minimal at the detection point. The paper finds
12cities converged at 600 of 2000 iterations, eliding ~70% of sampling, with
latency savings (~53%) smaller than iteration savings because of chain
imbalance.
"""

import numpy as np
from conftest import print_table

from repro.core.elision import ConvergenceDetector
from repro.core.extrapolation import full_budget_works
from repro.arch.machine import MachineModel
from repro.arch.platforms import SKYLAKE


def build_fig5(runner):
    result = runner.run("12cities")
    truth = runner.ground_truth("12cities")
    detector = ConvergenceDetector(check_interval=20)
    report = detector.detect(result, ground_truth=truth)
    return result, report


def test_fig5_convergence_process(runner, benchmark):
    result, report = benchmark.pedantic(
        build_fig5, args=(runner,), rounds=1, iterations=1
    )
    rows = [
        f"{it:>6d} {rhat:>8.3f} {kl:>10.4f}"
        + ("   <-- converged (R-hat < 1.1)" if it == report.converged_iteration else "")
        for it, rhat, kl in zip(
            report.checkpoints, report.rhat_trace, report.kl_trace
        )
    ]
    header = f"{'iter':>6s} {'R-hat':>8s} {'KL':>10s}"

    profile = runner.profile("12cities")
    machine = MachineModel(SKYLAKE)
    full = machine.job_seconds(
        profile, full_budget_works(result, profile), n_cores=4
    )
    elided = machine.job_seconds(
        profile,
        full_budget_works(result, profile, kept_iterations=report.converged_iteration),
        n_cores=4,
    )
    kept_full = profile.default_iterations - profile.default_warmup
    saved_iters = 1.0 - report.converged_iteration / kept_full
    saved_latency = 1.0 - elided / full
    print_table(
        "Figure 5: convergence process of 12cities",
        header, rows,
        footer=(
            f"converged at kept-iteration {report.converged_iteration} of "
            f"{kept_full} -> {100 * saved_iters:.0f}% iterations elided, "
            f"{100 * saved_latency:.0f}% latency saved"
        ),
    )

    assert report.converged
    # The KL at (and after) the detection point is near its floor.
    idx = report.checkpoints.index(report.converged_iteration)
    kl = np.asarray(report.kl_trace)
    assert kl[idx] < 3.0 * (np.nanmin(kl) + 1e-6) + 0.05
    # Substantial elision, and latency savings below iteration savings.
    assert saved_iters > 0.4
    assert 0.0 < saved_latency <= saved_iters + 0.05
    # Chain latency imbalance exists (paper: ratio 1.7 for 12cities).
    works = result.chain_work
    assert works.max() / works.min() > 1.01
